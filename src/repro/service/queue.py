"""Admission control and the priority inbox feeding the scheduler loop.

HTTP handler threads never touch the simulation engine directly — one
scheduler-loop thread owns all engine mutation (see
:mod:`repro.service.daemon`).  The :class:`QueueManager` sits between
them: handler threads call :meth:`admit` (pure checks) and
:meth:`push`; the loop thread drains with :meth:`pop_batch`.

Admission rejects, with a stable machine-readable reason:

* ``duplicate``     — a job under that id was already accepted
  (including terminal jobs: ids are forever, resubmit under a new id);
* ``over-capacity`` — the job wants more GPUs than the whole cluster
  has, so no schedule could ever place it;
* ``queue-full``    — the admitted-but-unfinished backlog reached
  ``max_depth`` (backpressure for the replay driver).

Entries drain highest ``priority`` first (ties: submission order).
Priority shapes *feeding* order only — once inside the engine, jobs
obey the paper's arrival-ordered starvation-avoidance queue — which
matters exactly when many submissions share one arrival instant (a
burst) and the operator wants some fed first.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from dataclasses import dataclass

from repro.workload.job import Job


@dataclass(frozen=True)
class AdmissionDecision:
    """The ruling on one submission."""

    admitted: bool
    reason: str  # "admitted" or a rejection reason


@dataclass(frozen=True)
class QueueEntry:
    """One admitted submission waiting for the scheduler loop."""

    job: Job
    priority: int = 0


class QueueManager:
    """Bounded priority inbox with admission checks.

    ``depth`` counts admitted jobs the service has not retired yet
    (the daemon calls :meth:`retire` on terminal transitions), so
    ``max_depth`` bounds *backlog*, not just the unpopped inbox.
    """

    def __init__(self, total_gpus: int, *, max_depth: int = 100_000) -> None:
        self.total_gpus = total_gpus
        self.max_depth = max_depth
        self._heap: list[tuple[int, int, QueueEntry]] = []
        self._seq = itertools.count()
        self._lock = threading.Lock()
        self._accepted: set[str] = set()
        self._live = 0  # admitted minus retired

    # ------------------------------------------------------------------
    def admit(self, job: Job) -> AdmissionDecision:
        """Pure admission ruling; does not enqueue."""
        with self._lock:
            return self._admit_locked(job)

    def _admit_locked(self, job: Job) -> AdmissionDecision:
        if job.job_id in self._accepted:
            return AdmissionDecision(False, "duplicate")
        if job.num_gpus > self.total_gpus:
            return AdmissionDecision(False, "over-capacity")
        if self._live >= self.max_depth:
            return AdmissionDecision(False, "queue-full")
        return AdmissionDecision(True, "admitted")

    def push(self, job: Job, priority: int = 0) -> AdmissionDecision:
        """Admit-and-enqueue in one critical section."""
        with self._lock:
            decision = self._admit_locked(job)
            if decision.admitted:
                self._accepted.add(job.job_id)
                self._live += 1
                self._enqueue_locked(job, priority)
        return decision

    def admit_and_reserve(self, job: Job) -> AdmissionDecision:
        """Rule on a submission and claim its id/depth budget — without
        making it visible to :meth:`pop_batch` yet.

        The daemon's submit path needs a two-phase protocol: the
        scheduler loop must never pop a job before its lifecycle entry
        and journal row exist, or the engine's observer notifications
        hit an untracked id.  So the handler thread reserves first,
        does its bookkeeping, then calls :meth:`enqueue`.
        """
        with self._lock:
            decision = self._admit_locked(job)
            if decision.admitted:
                self._accepted.add(job.job_id)
                self._live += 1
        return decision

    def enqueue(self, job: Job, priority: int = 0) -> None:
        """Publish a previously reserved job to the scheduler loop."""
        with self._lock:
            self._enqueue_locked(job, priority)

    def _enqueue_locked(self, job: Job, priority: int) -> None:
        heapq.heappush(
            self._heap,
            (-priority, next(self._seq), QueueEntry(job, priority)),
        )

    def restore(self, job: Job, priority: int = 0) -> None:
        """Re-enqueue a journaled job during restart recovery.

        Bypasses depth/duplicate checks — the job was already admitted
        in a previous life and its id must stay reserved.
        """
        with self._lock:
            self._accepted.add(job.job_id)
            self._live += 1
            self._enqueue_locked(job, priority)

    def reserve(self, job_id: str) -> None:
        """Burn an id without enqueueing or consuming depth budget.

        Restart recovery calls this for journaled *terminal* jobs:
        they need no replay, but resubmitting their id must still rule
        ``duplicate`` (the journal's primary key would reject the row
        anyway — this keeps admission and storage agreeing).
        """
        with self._lock:
            self._accepted.add(job_id)

    def pop_batch(self, limit: int | None = None) -> list[QueueEntry]:
        """Drain up to ``limit`` entries, highest priority first."""
        out: list[QueueEntry] = []
        with self._lock:
            while self._heap and (limit is None or len(out) < limit):
                out.append(heapq.heappop(self._heap)[2])
        return out

    def retire(self, job_id: str) -> None:
        """A tracked job reached a terminal state: free backlog budget.

        The id stays reserved (``duplicate`` forever) — only the depth
        accounting is released.
        """
        with self._lock:
            if job_id in self._accepted and self._live > 0:
                self._live -= 1

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Admitted-but-not-terminal jobs (the backpressure quantity)."""
        with self._lock:
            return self._live

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)
