"""Durable sqlite journal for the scheduler service.

Two tables:

* ``jobs`` — one row per accepted submission: the full manifest-format
  job document (JSON, round-trips bit-identically through
  :func:`repro.workload.manifest.job_from_dict`), the submission
  priority, and the job's *current* lifecycle state (denormalised for
  cheap recovery queries);
* ``transitions`` — the append-only lifecycle history: every accepted
  state-machine hop with a wall-clock stamp.

The store is written from HTTP handler threads (submissions) and the
scheduler loop (transitions), so connections run with
``check_same_thread=False`` behind one process-wide write lock; WAL
journaling with ``synchronous=NORMAL`` keeps a single insert cheap
enough for thousands of submissions per second while surviving a
process kill (WAL recovery replays complete transactions; a torn tail
is discarded, never half-applied).

On restart :meth:`ServiceStore.recover` returns every non-terminal
job so the daemon can rebuild its queue exactly where the dead
process left off.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro.service.statemachine import JobState
from repro.workload.job import Job
from repro.workload.manifest import job_from_dict, job_to_dict

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    job_id    TEXT PRIMARY KEY,
    manifest  TEXT NOT NULL,
    priority  INTEGER NOT NULL DEFAULT 0,
    state     TEXT NOT NULL,
    submitted_wall REAL NOT NULL,
    updated_wall   REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS transitions (
    seq       INTEGER PRIMARY KEY AUTOINCREMENT,
    job_id    TEXT NOT NULL,
    from_state TEXT,
    to_state  TEXT NOT NULL,
    wall      REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS transitions_by_job ON transitions (job_id, seq);
"""


@dataclass(frozen=True)
class StoredJob:
    """One recovered journal row."""

    job: Job
    priority: int
    state: JobState


class ServiceStore:
    """Submission/transition journal on one sqlite file."""

    def __init__(
        self,
        path: str | Path,
        *,
        clock=time.time,
        observe_write=None,
    ) -> None:
        self.path = str(path)
        self.clock = clock
        #: optional ``callable(latency_s)`` invoked after every journal
        #: write with its wall-clock cost — the daemon points this at
        #: the journal-write-latency histogram so a soak run can watch
        #: for sqlite stalls (lock contention, fsync storms)
        self.observe_write = observe_write
        self._lock = threading.Lock()
        self._db = sqlite3.connect(self.path, check_same_thread=False)
        self._db.execute("PRAGMA journal_mode=WAL")
        self._db.execute("PRAGMA synchronous=NORMAL")
        with self._lock:
            self._db.executescript(_SCHEMA)
            self._db.commit()

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def journal_submission(
        self, job: Job, priority: int, state: JobState
    ) -> None:
        """Persist one accepted submission (job row + first transition)."""
        now = self.clock()
        doc = json.dumps(job_to_dict(job), sort_keys=True)
        t0 = time.perf_counter()
        with self._lock:
            self._db.execute(
                "INSERT INTO jobs (job_id, manifest, priority, state, "
                "submitted_wall, updated_wall) VALUES (?, ?, ?, ?, ?, ?)",
                (job.job_id, doc, priority, state.value, now, now),
            )
            self._db.execute(
                "INSERT INTO transitions (job_id, from_state, to_state, wall) "
                "VALUES (?, NULL, ?, ?)",
                (job.job_id, state.value, now),
            )
            self._db.commit()
        if self.observe_write is not None:
            self.observe_write(time.perf_counter() - t0)

    def journal_transition(
        self, job_id: str, frm: JobState | None, to: JobState
    ) -> None:
        """Append one lifecycle hop and refresh the job's current state."""
        now = self.clock()
        t0 = time.perf_counter()
        with self._lock:
            self._db.execute(
                "UPDATE jobs SET state = ?, updated_wall = ? WHERE job_id = ?",
                (to.value, now, job_id),
            )
            self._db.execute(
                "INSERT INTO transitions (job_id, from_state, to_state, wall) "
                "VALUES (?, ?, ?, ?)",
                (job_id, None if frm is None else frm.value, to.value, now),
            )
            self._db.commit()
        if self.observe_write is not None:
            self.observe_write(time.perf_counter() - t0)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def load_job(self, job_id: str) -> StoredJob | None:
        with self._lock:
            row = self._db.execute(
                "SELECT manifest, priority, state FROM jobs WHERE job_id = ?",
                (job_id,),
            ).fetchone()
        if row is None:
            return None
        return StoredJob(
            job=job_from_dict(json.loads(row[0])),
            priority=int(row[1]),
            state=JobState(row[2]),
        )

    def all_jobs(self) -> list[StoredJob]:
        """Every journaled job, submission order."""
        with self._lock:
            rows = self._db.execute(
                "SELECT manifest, priority, state FROM jobs "
                "ORDER BY submitted_wall, job_id"
            ).fetchall()
        return [
            StoredJob(
                job=job_from_dict(json.loads(m)),
                priority=int(p),
                state=JobState(s),
            )
            for m, p, s in rows
        ]

    def recover(self) -> list[StoredJob]:
        """Non-terminal jobs, submission order — the restart queue."""
        return [
            s for s in self.all_jobs() if not s.state.terminal
        ]

    def transitions(self, job_id: str | None = None) -> list[tuple]:
        """(job_id, from, to, wall) history rows, append order."""
        query = (
            "SELECT job_id, from_state, to_state, wall FROM transitions"
        )
        args: tuple = ()
        if job_id is not None:
            query += " WHERE job_id = ?"
            args = (job_id,)
        query += " ORDER BY seq"
        with self._lock:
            return self._db.execute(query, args).fetchall()

    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            self._db.close()

    def __enter__(self) -> "ServiceStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
