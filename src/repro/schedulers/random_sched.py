"""Random feasible placement -- an ablation baseline.

Not in the paper's evaluation, but useful to bound how much of the
topology-aware gain comes from *any* structured choice versus chance:
picks a uniformly random feasible machine and a random subset of its
free GPUs.  Deterministic under a fixed seed.
"""

from __future__ import annotations

import random

from repro.core.placement import PlacementSolution
from repro.schedulers.base import Scheduler, SchedulingContext


class RandomScheduler(Scheduler):
    name = "RANDOM"

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self._rng = random.Random(seed)

    def schedule(self, ctx: SchedulingContext) -> list[PlacementSolution]:
        placed: list[PlacementSolution] = []
        co = dict(ctx.co_runners)
        for entry in list(self._queue):
            job = entry.job
            candidates = [
                m
                for m in ctx.topo.machines()
                if ctx.alloc.free_count(m) >= job.num_gpus
            ]
            if not candidates:
                continue
            machine = self._rng.choice(candidates)
            free = ctx.alloc.free_gpus(machine=machine)
            gpus = tuple(sorted(self._rng.sample(free, job.num_gpus)))
            solution = ctx.engine.score_allocation(job, gpus, co)
            self._place(ctx, job, solution, co)
            self._remove(job.job_id)
            placed.append(solution)
        return placed
