"""EASY backfilling baseline.

FIFO with a reservation for the head job: when the head does not fit,
it gets a reservation at the earliest time enough GPUs free up
(computed from profile-estimated completion times of running jobs);
younger jobs may jump the queue only if their estimated completion
precedes that reservation, so the head is never delayed.  The standard
HPC batch-scheduler discipline -- queue-smart but topology-blind, the
strongest non-topology baseline in our comparisons.
"""

from __future__ import annotations

from repro.core.placement import PlacementSolution
from repro.schedulers.base import Scheduler, SchedulingContext
from repro.schedulers.fcfs import FCFSScheduler
from repro.workload.job import Job
from repro.workload.profiles import ProfileDatabase, default_database


class BackfillScheduler(Scheduler):
    name = "EASY-BACKFILL"

    def __init__(self, profiles: ProfileDatabase | None = None) -> None:
        super().__init__()
        self.profiles = profiles or default_database()
        # job id -> estimated completion time of running placements
        self._estimated_end: dict[str, float] = {}

    def estimated_duration(self, job: Job) -> float:
        return self.profiles.for_job(job).solo_time(job.iterations)

    # ------------------------------------------------------------------
    def _head_reservation(
        self, ctx: SchedulingContext, head: Job
    ) -> float | None:
        """Earliest time some machine can host the head job.

        Walks each machine's running jobs in estimated-completion order
        and returns the soonest instant cumulative releases plus current
        free GPUs reach the head's demand.  ``None`` when even an empty
        machine could not host it.
        """
        best: float | None = None
        for machine in ctx.topo.machines():
            if not ctx.alloc.is_machine_up(machine):
                continue
            total = len(ctx.topo.gpus(machine=machine))
            if total < head.num_gpus:
                continue
            free = ctx.alloc.free_count(machine)
            if free >= head.num_gpus:
                return ctx.now
            releases = []
            for job_id in ctx.alloc.jobs_on_machine(machine):
                end = self._estimated_end.get(job_id, ctx.now)
                held_here = sum(
                    1
                    for g in ctx.alloc.gpus_of(job_id)
                    if ctx.topo.machine_of(g) == machine
                )
                releases.append((end, held_here))
            releases.sort()
            have = free
            for end, held in releases:
                have += held
                if have >= head.num_gpus:
                    candidate = max(end, ctx.now)
                    if best is None or candidate < best:
                        best = candidate
                    break
        return best

    # ------------------------------------------------------------------
    def schedule(self, ctx: SchedulingContext) -> list[PlacementSolution]:
        placed: list[PlacementSolution] = []
        co = dict(ctx.co_runners)
        # drop estimates of jobs that finished
        self._estimated_end = {
            job_id: end
            for job_id, end in self._estimated_end.items()
            if job_id in ctx.co_runners
        }

        def place(job: Job, gpus) -> None:
            solution = ctx.engine.score_allocation(job, tuple(gpus), co)
            self._place(ctx, job, solution, co)
            self._remove(job.job_id)
            self._estimated_end[job.job_id] = ctx.now + self.estimated_duration(job)
            placed.append(solution)

        # 1. place leading jobs FIFO while they fit
        while self._queue:
            head = self._queue[0].job
            gpus = FCFSScheduler._first_fit(ctx, head.num_gpus)
            if gpus is None:
                break
            place(head, gpus)
        if not self._queue:
            return placed

        # 2. head blocked: compute its reservation
        head = self._queue[0].job
        reservation = self._head_reservation(ctx, head)
        if reservation is None:
            # the head can never run; EASY keeps FIFO semantics and
            # blocks (the simulator will flag it unplaceable)
            return placed

        # 3. backfill: later jobs that fit now and would finish before
        #    the head's reservation
        for entry in list(self._queue[1:]):
            job = entry.job
            if ctx.now + self.estimated_duration(job) > reservation + 1e-9:
                continue
            gpus = FCFSScheduler._first_fit(ctx, job.num_gpus)
            if gpus is None:
                continue
            place(job, gpus)
        return placed
