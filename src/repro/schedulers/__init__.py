"""Scheduling policies.

* :class:`FCFSScheduler` -- First-Come-First-Served with a strict FIFO
  queue and first-fit GPU selection (paper Section 5.2 baseline).
* :class:`BestFitScheduler` -- Best-Fit bin packing: "allocating first
  the GPUs from highly used domains" (paper Section 5.2 baseline).
* :class:`TopoAwareScheduler` -- the paper's Algorithm 1 with the
  TOPO-AWARE policy (place as soon as resources exist) or, with
  ``postpone=True``, the TOPO-AWARE-P policy (postpone placements that
  do not satisfy the job's utility/P2P SLO); ``preempt=True`` adds the
  TOPO-AWARE-PM policy (priority preemption + periodic
  defragmentation, both gated on net utility gain).
* :class:`RandomScheduler` -- uniform random feasible placement, an
  extra ablation baseline.
"""

from repro.schedulers.base import Scheduler, SchedulingContext
from repro.schedulers.fcfs import FCFSScheduler
from repro.schedulers.bestfit import BestFitScheduler
from repro.schedulers.topo import TopoAwareScheduler
from repro.schedulers.random_sched import RandomScheduler
from repro.schedulers.sjf import SJFScheduler
from repro.schedulers.backfill import BackfillScheduler

__all__ = [
    "BackfillScheduler",
    "BestFitScheduler",
    "FCFSScheduler",
    "RandomScheduler",
    "SJFScheduler",
    "Scheduler",
    "SchedulingContext",
    "TopoAwareScheduler",
    "make_scheduler",
]


def make_scheduler(name: str, **kwargs) -> Scheduler:
    """Factory by canonical name: FCFS, BF, TOPO-AWARE, TOPO-AWARE-P,
    TOPO-AWARE-PM, RANDOM."""
    key = name.strip().upper().replace("_", "-")
    if key == "FCFS":
        return FCFSScheduler(**kwargs)
    if key in ("BF", "BEST-FIT", "BESTFIT"):
        return BestFitScheduler(**kwargs)
    if key == "TOPO-AWARE":
        return TopoAwareScheduler(postpone=False, **kwargs)
    if key == "TOPO-AWARE-P":
        return TopoAwareScheduler(postpone=True, **kwargs)
    if key == "TOPO-AWARE-PM":
        return TopoAwareScheduler(postpone=True, preempt=True, **kwargs)
    if key == "RANDOM":
        return RandomScheduler(**kwargs)
    if key == "SJF":
        return SJFScheduler(**kwargs)
    if key in ("EASY-BACKFILL", "BACKFILL", "EASY"):
        return BackfillScheduler(**kwargs)
    raise ValueError(f"unknown scheduler {name!r}")
