"""Shortest-Job-First baseline.

Orders the waiting queue by *estimated* solo run time (profile-driven,
Section 4.2-style) instead of arrival, then places greedily first-fit
like FCFS.  A classic throughput-oriented baseline: great mean waiting
time, starvation-prone for long jobs, and still topology-blind --
useful to separate "smarter queueing" from "smarter placement" when
comparing against TOPO-AWARE*.
"""

from __future__ import annotations

from repro.core.placement import PlacementSolution
from repro.schedulers.base import Scheduler, SchedulingContext
from repro.schedulers.fcfs import FCFSScheduler
from repro.workload.job import Job
from repro.workload.profiles import ProfileDatabase, default_database


class SJFScheduler(Scheduler):
    name = "SJF"

    def __init__(self, profiles: ProfileDatabase | None = None) -> None:
        super().__init__()
        self.profiles = profiles or default_database()

    def estimated_duration(self, job: Job) -> float:
        """Profile-estimated solo run time (packed placement)."""
        return self.profiles.for_job(job).solo_time(job.iterations)

    def schedule(self, ctx: SchedulingContext) -> list[PlacementSolution]:
        placed: list[PlacementSolution] = []
        co = dict(ctx.co_runners)
        max_free = ctx.alloc.max_free_count()
        pending = sorted(
            self.queued_jobs(),
            key=lambda j: (self.estimated_duration(j), j.arrival_time, j.job_id),
        )
        for job in pending:
            if job.num_gpus > max_free:
                continue
            gpus = FCFSScheduler._first_fit(ctx, job.num_gpus)
            if gpus is None:
                continue
            solution = ctx.engine.score_allocation(job, tuple(gpus), co)
            self._place(ctx, job, solution, co)
            self._remove(job.job_id)
            placed.append(solution)
            max_free = ctx.alloc.max_free_count()
            if max_free == 0:
                break
        return placed
