"""Scheduler interface and shared queue machinery.

A scheduler owns a waiting queue sorted by arrival time (oldest first,
the paper's starvation-avoidance rule) and is invoked by the simulator
or the prototype loop whenever the cluster state changes (a job arrived
or finished).  Each invocation returns the placements to enforce; jobs
it cannot or will not place stay queued for the next iteration, exactly
like Algorithm 1's ``postponed_list`` re-queueing.
"""

from __future__ import annotations

import abc
import bisect
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping

from repro.core.placement import PlacementEngine, PlacementSolution
from repro.topology.allocation import AllocationState
from repro.topology.graph import TopologyGraph
from repro.workload.job import Job

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.sim.cluster import ClusterState


@dataclass
class SchedulingContext:
    """Everything a policy may consult when deciding placements."""

    topo: TopologyGraph
    alloc: AllocationState
    engine: PlacementEngine
    co_runners: Mapping[str, tuple[Job, frozenset[str]]]
    now: float = 0.0
    #: full cluster view (running jobs, rates, health); None when a
    #: caller builds a bare context outside the simulation kernel
    cluster: "ClusterState | None" = None
    #: decision flight recorder (repro.obs.provenance) threaded through
    #: by the simulation kernel when one is attached as an observer;
    #: None — the default — keeps the hot path provenance-free
    recorder: object | None = None
    #: eviction verb bound by the simulation kernel:
    #: ``evict(job_id, reason)`` checkpoints and frees a running job.
    #: Reason ``"preempt"`` re-queues the victim for a later round;
    #: ``"migrate"`` leaves re-placement to the caller, which must
    #: return a solution for the job in the same decision round.  None
    #: outside the kernel — preempting policies degrade to placement-only.
    evict: Callable[[str, str], None] | None = None


@dataclass(order=True)
class _QueueEntry:
    arrival: float
    job_id: str
    job: Job = field(compare=False)


class Scheduler(abc.ABC):
    """Base class: arrival-ordered waiting queue + policy hook."""

    #: canonical policy name (overridden by subclasses)
    name: str = "abstract"

    def __init__(self) -> None:
        self._queue: list[_QueueEntry] = []
        self.postponements: dict[str, int] = {}
        self._attached_to: object | None = None

    # ------------------------------------------------------------------
    # ownership
    # ------------------------------------------------------------------
    def attach(self, owner: object) -> None:
        """Claim this scheduler for one simulation/prototype run.

        Scheduler instances carry queue and postponement state, so
        reusing one across two runs silently leaks jobs from the first
        run into the second.  The first caller wins; any later caller
        gets a clear error instead of corrupted results.
        """
        if self._attached_to is not None and self._attached_to is not owner:
            raise RuntimeError(
                f"{type(self).__name__} is already attached to another run; "
                "scheduler instances carry queue/postponement state, so "
                "create a fresh scheduler per Simulator"
            )
        self._attached_to = owner

    # ------------------------------------------------------------------
    # queue management
    # ------------------------------------------------------------------
    def submit(self, job: Job) -> None:
        """Add a job to the waiting queue (ordered by arrival time)."""
        if any(e.job_id == job.job_id for e in self._queue):
            raise ValueError(f"job {job.job_id!r} already queued")
        bisect.insort(self._queue, _QueueEntry(job.arrival_time, job.job_id, job))

    def queued_jobs(self) -> list[Job]:
        return [e.job for e in self._queue]

    def queue_length(self) -> int:
        return len(self._queue)

    def _remove(self, job_id: str) -> None:
        self._queue = [e for e in self._queue if e.job_id != job_id]

    def withdraw(self, job_id: str) -> bool:
        """Drop a waiting job from the queue (the service cancel verb).

        Returns whether the job was queued; postponement bookkeeping is
        cleared so a resubmission under the same id starts fresh.
        """
        before = len(self._queue)
        self._remove(job_id)
        self.postponements.pop(job_id, None)
        return len(self._queue) != before

    def _note_postponed(self, job_id: str) -> None:
        self.postponements[job_id] = self.postponements.get(job_id, 0) + 1

    # ------------------------------------------------------------------
    # policy hook
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def schedule(self, ctx: SchedulingContext) -> list[PlacementSolution]:
        """Decide placements for queued jobs given the current state.

        Implementations remove each placed job from the queue, commit
        its GPUs to ``ctx.alloc`` (via ``ctx.engine.enforce``) so that
        later decisions in the same round see them, and return the
        solutions; the caller starts the corresponding executions.
        """

    # ------------------------------------------------------------------
    # helpers shared by policies
    # ------------------------------------------------------------------
    @staticmethod
    def _place(
        ctx: SchedulingContext,
        job: Job,
        solution: PlacementSolution,
        co: dict[str, tuple[Job, frozenset[str]]],
    ) -> None:
        """Commit a solution and register it as a co-runner."""
        ctx.engine.enforce(solution)
        co[job.job_id] = (job, frozenset(solution.gpus))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(queue={len(self._queue)})"
