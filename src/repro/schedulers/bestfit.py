"""Best-Fit bin-packing baseline (paper Section 5.2).

"Best Fit (BF) performing bin packing (i.e. allocating first the GPUs
from highly used domains)."  The machine whose free capacity most
tightly fits the job wins; within it, GPUs are drawn from the most-used
sockets first.  Unlike FCFS, BF scans past a job that does not fit
(greedy backfilling), which is how real bin-packing schedulers behave.
Topology-blind: it happily splits a job across sockets if that packs
tighter.
"""

from __future__ import annotations

from repro.core.placement import PlacementSolution
from repro.schedulers.base import Scheduler, SchedulingContext


class BestFitScheduler(Scheduler):
    name = "BF"

    def schedule(self, ctx: SchedulingContext) -> list[PlacementSolution]:
        placed: list[PlacementSolution] = []
        co = dict(ctx.co_runners)
        max_free = ctx.alloc.max_free_count()
        for entry in list(self._queue):
            job = entry.job
            if job.num_gpus > max_free:
                continue  # cannot fit anywhere right now
            gpus = self._best_fit(ctx, job.num_gpus)
            if gpus is None:
                continue  # try the next job (backfill)
            solution = ctx.engine.score_allocation(job, tuple(gpus), co)
            self._place(ctx, job, solution, co)
            self._remove(job.job_id)
            placed.append(solution)
            max_free = ctx.alloc.max_free_count()
            if max_free == 0:
                break
        return placed

    @staticmethod
    def _best_fit(ctx: SchedulingContext, n: int) -> list[str] | None:
        best_machine: str | None = None
        best_leftover: int | None = None
        for machine in ctx.topo.machines():
            free = ctx.alloc.free_count(machine)  # O(1)
            if free < n:
                continue
            leftover = free - n
            if best_leftover is None or leftover < best_leftover:
                best_machine = machine
                best_leftover = leftover
                if leftover == 0:
                    break  # cannot fit tighter
        if best_machine is None:
            return None
        # most-used sockets first ("GPUs from highly used domains")
        sockets = sorted(
            ctx.topo.sockets(machine=best_machine),
            key=lambda s: (
                len(ctx.alloc.free_gpus(socket=s)),
                s,
            ),
        )
        chosen: list[str] = []
        for sock in sockets:
            for g in sorted(
                ctx.alloc.free_gpus(socket=sock), key=ctx.topo.gpu_index_of
            ):
                chosen.append(g)
                if len(chosen) == n:
                    return chosen
        return None  # pragma: no cover - capacity checked above
