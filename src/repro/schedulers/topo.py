"""The paper's topology-aware scheduler (Algorithm 1).

Both policies run the same pipeline per queued job (oldest first):
filter hosts by constraints, map the job graph onto every candidate
pool with DRB (Algorithm 2 + 3), keep the highest-utility solution.

* **TOPO-AWARE** (``postpone=False``): the best available solution is
  always enforced as soon as resources exist, "without consideration
  for the future jobs".  Jobs with no feasible hosts are re-queued
  (Algorithm 1 pops every waiting job each iteration).
* **TOPO-AWARE-P** (``postpone=True``): additionally allows
  out-of-order execution by choice: a solution that does not satisfy
  the job's SLO -- utility below ``min_utility``, or no P2P for a
  P2P-requiring job -- is postponed to the next scheduler iteration,
  in the hope that finishing jobs free a better allocation.
* **TOPO-AWARE-PM** (``preempt=True``): builds preemption and
  migration on top of the postponing policy.  After the placement
  loop it may (a) evict a strictly-lower-priority running job when a
  queued job's utility gain, net of the victim's utility and a
  migration-cost penalty (:func:`repro.core.utility.migration_penalty`),
  clears a threshold -- the victim is checkpointed and re-queued, not
  restarted; and (b) every ``defrag_interval`` rounds, migrate a
  running job whose current placement scores markedly below the best
  placement now available (consolidating fragmented allocations freed
  by completions).  With every job at the default priority 0 and
  ``defrag_interval=0`` the policy is decision-for-decision identical
  to TOPO-AWARE-P.

Anti-starvation safeguards for the postponing policy: a job is placed
anyway when nothing is running (the state cannot improve), when its
P2P demand is unattainable on this hardware, or when an optional
postponement budget is exhausted.
"""

from __future__ import annotations

from repro.core.placement import PlacementSolution
from repro.core.utility import SLO_EPS, migration_penalty
from repro.obs import trace as _trace
from repro.schedulers.base import Scheduler, SchedulingContext
from repro.workload.job import Job


class TopoAwareScheduler(Scheduler):
    def __init__(
        self,
        postpone: bool = False,
        max_postponements: int | None = None,
        preempt: bool = False,
        defrag_interval: int = 10,
        max_evictions_per_round: int = 2,
        preempt_min_gain: float = 0.0,
        defrag_min_gain: float = 0.05,
    ) -> None:
        super().__init__()
        self.postpone = postpone
        self.max_postponements = max_postponements
        self.preempt = preempt
        #: run the defragmentation pass every N decision rounds
        #: (0 disables it)
        self.defrag_interval = defrag_interval
        #: combined cap on preemptions + migrations per decision round,
        #: bounding churn (each eviction pays a migration cost)
        self.max_evictions_per_round = max_evictions_per_round
        #: minimum net utility gain (challenger − victim − penalty)
        #: before a preemption is worth its disruption
        self.preempt_min_gain = preempt_min_gain
        #: minimum net utility gain before a migration is worth its cost
        self.defrag_min_gain = defrag_min_gain
        if preempt:
            self.name = "TOPO-AWARE-PM"
        else:
            self.name = "TOPO-AWARE-P" if postpone else "TOPO-AWARE"
        self._round = 0

    def schedule(self, ctx: SchedulingContext) -> list[PlacementSolution]:
        placed: list[PlacementSolution] = []
        co = dict(ctx.co_runners)
        rec = ctx.recorder
        max_free = ctx.alloc.max_free_count()
        total_free = ctx.alloc.total_free_count()
        for entry in list(self._queue):
            job = entry.job
            with _trace.span(
                "sched.propose",
                job_id=job.job_id,
                scheduler=self.name,
                num_gpus=job.num_gpus,
                queued=len(self._queue),
            ) as sp:
                # capacity pruning: reject a job the cluster cannot hold
                # before DRB runs.  Same no-fit answer (filter_hosts
                # would return no pool), at O(1) per job — the aggregates
                # come from the allocator's maintained capacity-bucket
                # index — and unlike the old silent skip it still emits
                # the span and the no-fit outcome Algorithm 1's
                # per-iteration pop implies.
                if (job.single_node and job.num_gpus > max_free) or (
                    not job.single_node and job.num_gpus > total_free
                ):
                    sp.set(outcome="no-fit", reason="capacity")
                    if rec is not None:
                        rec.decision(
                            t=ctx.now,
                            scheduler=self.name,
                            job=job,
                            queued=len(self._queue),
                            verdict="no-fit",
                            reason="capacity",
                            capacity={
                                "max_free": max_free,
                                "total_free": total_free,
                                "single_node": job.single_node,
                                # hosts that could hold the job whole,
                                # straight off the bucket index (tap)
                                "eligible_hosts": (
                                    ctx.alloc.eligible_machine_count(
                                        job.num_gpus
                                    )
                                ),
                            },
                        )
                    continue
                prov = {} if rec is not None else None
                solution = ctx.engine.propose(job, co, provenance=prov)
                if solution is None:
                    # Algorithm 1 pops every queued job per iteration: a
                    # job with no feasible hosts right now is simply
                    # re-queued (unlike FCFS, the head never blocks
                    # later jobs).
                    sp.set(outcome="no-fit")
                    if rec is not None:
                        rec.decision(
                            t=ctx.now,
                            scheduler=self.name,
                            job=job,
                            queued=len(self._queue),
                            verdict="no-fit",
                            reason=prov.pop("reason", "no-feasible-pool"),
                            propose=prov,
                        )
                    continue
                sp.set(utility=solution.utility, p2p=solution.p2p)
                detail = {} if (rec is not None and self.postpone) else None
                if self.postpone and not self._acceptable(
                    ctx, job, solution, co, detail
                ):
                    self._note_postponed(job.job_id)
                    sp.set(
                        outcome="postponed",
                        postponements=self.postponements.get(job.job_id, 0),
                    )
                    if rec is not None:
                        rec.decision(
                            t=ctx.now,
                            scheduler=self.name,
                            job=job,
                            queued=len(self._queue),
                            verdict="postponed",
                            reason=(detail or {}).get("failed"),
                            solution=solution,
                            engine=ctx.engine,
                            propose=prov,
                            slo=detail,
                            postponements=self.postponements.get(job.job_id, 0),
                        )
                    continue
                self._place(ctx, job, solution, co)
                self._remove(job.job_id)
                placed.append(solution)
                sp.set(outcome="placed", gpus=len(solution.gpus))
                if rec is not None:
                    rec.decision(
                        t=ctx.now,
                        scheduler=self.name,
                        job=job,
                        queued=len(self._queue) + 1,
                        verdict="placed",
                        solution=solution,
                        engine=ctx.engine,
                        propose=prov,
                        slo=detail,
                        postponements=self.postponements.get(job.job_id, 0),
                    )
            max_free = ctx.alloc.max_free_count()
            total_free = ctx.alloc.total_free_count()
            if max_free == 0:
                break
        if self.preempt and ctx.cluster is not None and ctx.evict is not None:
            self._round += 1
            budget = self.max_evictions_per_round
            budget -= self._preempt_pass(ctx, co, placed, budget)
            if (
                budget > 0
                and self.defrag_interval
                and self._round % self.defrag_interval == 0
            ):
                self._defrag_pass(ctx, co, placed, budget)
        return placed

    # ------------------------------------------------------------------
    # preemption & migration (TOPO-AWARE-PM)
    # ------------------------------------------------------------------
    def _slo_ok(self, ctx: SchedulingContext, job: Job, solution) -> bool:
        """The postponement SLO predicate, reused for eviction probes."""
        if solution.utility < job.min_utility - SLO_EPS:
            return False
        return (
            not job.requires_p2p
            or solution.p2p
            or not ctx.engine.p2p_attainable(job)
        )

    def _remaining_wall_s(self, run) -> float:
        """A running job's projected wall-clock seconds to completion."""
        if run.rate <= 0:
            return run.remaining
        return run.remaining / run.rate

    def _preempt_pass(
        self,
        ctx: SchedulingContext,
        co: dict,
        placed: list[PlacementSolution],
        budget: int,
    ) -> int:
        """Evict lower-priority running jobs for queued higher-priority ones.

        For each still-queued job (oldest first) we try victims in
        rising (priority, progress) order: probe the placement the
        queued job would get with the victim's GPUs freed, and commit
        the eviction only when the challenger's utility beats the
        victim's current utility plus the migration penalty by at least
        ``preempt_min_gain`` — eviction must raise aggregate utility
        net of its cost, never just shuffle it.  Returns the number of
        evictions committed.
        """
        cluster = ctx.cluster
        rec = ctx.recorder
        evictions = 0
        for entry in list(self._queue):
            if evictions >= budget:
                break
            job = entry.job
            candidates = sorted(
                (
                    run
                    for run in cluster.running.values()
                    if run.job.priority < job.priority
                ),
                key=lambda r: (
                    r.job.priority,
                    1.0 - (r.remaining / r.solo if r.solo > 0 else 0.0),
                    r.job.job_id,
                ),
            )
            for run in candidates:
                victim_id = run.job.job_id
                # victim's utility under its current placement (its own
                # GPUs excluded from the co-runner view)
                co_minus = {k: v for k, v in co.items() if k != victim_id}
                u_victim = ctx.engine.score_allocation(
                    run.job, tuple(sorted(run.gpus)), co_minus
                ).utility
                # probe: what would the queued job get with the victim gone?
                ctx.alloc.release(victim_id)
                saved_co = co.pop(victim_id, None)
                prov = {} if rec is not None else None
                solution = ctx.engine.propose(job, co, provenance=prov)
                # revert the probe before deciding; after a committed
                # ctx.evict the free pool is identical, so the probe's
                # solution can be enforced as-is
                ctx.alloc.allocate(victim_id, run.gpus)
                if saved_co is not None:
                    co[victim_id] = saved_co
                if solution is None or not self._slo_ok(ctx, job, solution):
                    continue
                penalty = migration_penalty(
                    self._remaining_wall_s(run), cluster.params
                )
                gain = solution.utility - u_victim - penalty
                if gain <= self.preempt_min_gain:
                    continue
                ctx.evict(victim_id, "preempt")
                co.pop(victim_id, None)
                self._place(ctx, job, solution, co)
                self._remove(job.job_id)
                placed.append(solution)
                evictions += 1
                if rec is not None:
                    rec.decision(
                        t=ctx.now,
                        scheduler=self.name,
                        job=job,
                        queued=len(self._queue) + 1,
                        verdict="evict",
                        reason="preempt",
                        solution=solution,
                        engine=ctx.engine,
                        propose=prov,
                        evict={
                            "kind": "preempt",
                            "victim": victim_id,
                            "victim_priority": run.job.priority,
                            "job_priority": job.priority,
                            "victim_utility": u_victim,
                            "job_utility": solution.utility,
                            "migration_penalty": penalty,
                            "gain": gain,
                            "min_gain": self.preempt_min_gain,
                        },
                    )
                break
        return evictions

    def _defrag_pass(
        self,
        ctx: SchedulingContext,
        co: dict,
        placed: list[PlacementSolution],
        budget: int,
    ) -> int:
        """Migrate running jobs to markedly better placements.

        Completions leave fragmented allocations behind; periodically
        re-score every running job's placement and move the worst-off
        ones when the best placement now available beats the current
        one by more than the migration penalty plus ``defrag_min_gain``.
        Returns the number of migrations committed.
        """
        cluster = ctx.cluster
        rec = ctx.recorder
        scored = []
        for victim_id in sorted(cluster.running):
            run = cluster.running[victim_id]
            co_minus = {k: v for k, v in co.items() if k != victim_id}
            current = ctx.engine.score_allocation(
                run.job, tuple(sorted(run.gpus)), co_minus
            )
            scored.append((current.utility, victim_id, run))
        scored.sort(key=lambda x: (x[0], x[1]))  # worst placements first
        moves = 0
        for u_current, victim_id, run in scored:
            if moves >= budget:
                break
            # probe: best placement with the job's own GPUs freed
            ctx.alloc.release(victim_id)
            saved_co = co.pop(victim_id, None)
            prov = {} if rec is not None else None
            solution = ctx.engine.propose(run.job, co, provenance=prov)
            ctx.alloc.allocate(victim_id, run.gpus)
            if saved_co is not None:
                co[victim_id] = saved_co
            if solution is None or frozenset(solution.gpus) == run.gpus:
                continue
            penalty = migration_penalty(
                self._remaining_wall_s(run), cluster.params
            )
            gain = solution.utility - u_current - penalty
            if gain <= self.defrag_min_gain:
                continue
            # commit: evict without re-queueing; the job restarts on the
            # new GPUs this same round with its progress checkpointed
            ctx.evict(victim_id, "migrate")
            co.pop(victim_id, None)
            self._place(ctx, run.job, solution, co)
            placed.append(solution)
            moves += 1
            if rec is not None:
                rec.decision(
                    t=ctx.now,
                    scheduler=self.name,
                    job=run.job,
                    queued=len(self._queue),
                    verdict="evict",
                    reason="defrag",
                    solution=solution,
                    engine=ctx.engine,
                    propose=prov,
                    evict={
                        "kind": "migrate",
                        "victim": victim_id,
                        "victim_utility": u_current,
                        "job_utility": solution.utility,
                        "migration_penalty": penalty,
                        "gain": gain,
                        "min_gain": self.defrag_min_gain,
                    },
                )
        return moves

    # ------------------------------------------------------------------
    def _acceptable(
        self,
        ctx: SchedulingContext,
        job: Job,
        solution: PlacementSolution,
        co: dict,
        detail: dict | None = None,
    ) -> bool:
        """TOPO-AWARE-P's postponement test (False = postpone).

        ``detail`` (optional) is a provenance out-param filled with the
        SLO predicate inputs, which predicate failed (``"utility"`` or
        ``"p2p"``) and any anti-starvation override — read-only
        bookkeeping that preserves the predicate evaluation order, so
        attaching it changes no decision.
        """
        utility_ok = solution.utility >= job.min_utility - SLO_EPS
        p2p_ok = (
            not job.requires_p2p
            or solution.p2p
            or not ctx.engine.p2p_attainable(job)
        )
        if detail is not None:
            detail.update(
                min_utility=job.min_utility,
                utility=solution.utility,
                utility_ok=utility_ok,
                requires_p2p=job.requires_p2p,
                solution_p2p=solution.p2p,
                p2p_ok=p2p_ok,
                failed=(
                    None if utility_ok and p2p_ok
                    else ("utility" if not utility_ok else "p2p")
                ),
                override=None,
            )
        if utility_ok and p2p_ok:
            return True
        # nothing running: the state cannot improve by waiting
        if not co:
            if detail is not None:
                detail["override"] = "nothing-running"
            return True
        if (
            self.max_postponements is not None
            and self.postponements.get(job.job_id, 0) >= self.max_postponements
        ):
            if detail is not None:
                detail["override"] = "postponement-budget"
            return True
        return False
