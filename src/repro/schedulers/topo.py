"""The paper's topology-aware scheduler (Algorithm 1).

Both policies run the same pipeline per queued job (oldest first):
filter hosts by constraints, map the job graph onto every candidate
pool with DRB (Algorithm 2 + 3), keep the highest-utility solution.

* **TOPO-AWARE** (``postpone=False``): the best available solution is
  always enforced as soon as resources exist, "without consideration
  for the future jobs".  Jobs with no feasible hosts are re-queued
  (Algorithm 1 pops every waiting job each iteration).
* **TOPO-AWARE-P** (``postpone=True``): additionally allows
  out-of-order execution by choice: a solution that does not satisfy
  the job's SLO -- utility below ``min_utility``, or no P2P for a
  P2P-requiring job -- is postponed to the next scheduler iteration,
  in the hope that finishing jobs free a better allocation.

Anti-starvation safeguards for the postponing policy: a job is placed
anyway when nothing is running (the state cannot improve), when its
P2P demand is unattainable on this hardware, or when an optional
postponement budget is exhausted.
"""

from __future__ import annotations

from repro.core.placement import PlacementSolution
from repro.obs import trace as _trace
from repro.schedulers.base import Scheduler, SchedulingContext
from repro.workload.job import Job


class TopoAwareScheduler(Scheduler):
    def __init__(
        self,
        postpone: bool = False,
        max_postponements: int | None = None,
    ) -> None:
        super().__init__()
        self.postpone = postpone
        self.max_postponements = max_postponements
        self.name = "TOPO-AWARE-P" if postpone else "TOPO-AWARE"

    def schedule(self, ctx: SchedulingContext) -> list[PlacementSolution]:
        placed: list[PlacementSolution] = []
        co = dict(ctx.co_runners)
        max_free = ctx.alloc.max_free_count()
        total_free = ctx.alloc.total_free_count()
        for entry in list(self._queue):
            job = entry.job
            with _trace.span(
                "sched.propose",
                job_id=job.job_id,
                scheduler=self.name,
                num_gpus=job.num_gpus,
                queued=len(self._queue),
            ) as sp:
                # capacity pruning: reject a job the cluster cannot hold
                # before DRB runs.  Same no-fit answer (filter_hosts
                # would return no pool), at O(1) per job — but unlike
                # the old silent skip it still emits the span and the
                # no-fit outcome Algorithm 1's per-iteration pop implies.
                if (job.single_node and job.num_gpus > max_free) or (
                    not job.single_node and job.num_gpus > total_free
                ):
                    sp.set(outcome="no-fit", reason="capacity")
                    continue
                solution = ctx.engine.propose(job, co)
                if solution is None:
                    # Algorithm 1 pops every queued job per iteration: a
                    # job with no feasible hosts right now is simply
                    # re-queued (unlike FCFS, the head never blocks
                    # later jobs).
                    sp.set(outcome="no-fit")
                    continue
                sp.set(utility=solution.utility, p2p=solution.p2p)
                if self.postpone and not self._acceptable(ctx, job, solution, co):
                    self._note_postponed(job.job_id)
                    sp.set(
                        outcome="postponed",
                        postponements=self.postponements.get(job.job_id, 0),
                    )
                    continue
                self._place(ctx, job, solution, co)
                self._remove(job.job_id)
                placed.append(solution)
                sp.set(outcome="placed", gpus=len(solution.gpus))
            max_free = ctx.alloc.max_free_count()
            total_free = ctx.alloc.total_free_count()
            if max_free == 0:
                break
        return placed

    # ------------------------------------------------------------------
    def _acceptable(
        self,
        ctx: SchedulingContext,
        job: Job,
        solution: PlacementSolution,
        co: dict,
    ) -> bool:
        """TOPO-AWARE-P's postponement test (False = postpone)."""
        utility_ok = solution.utility >= job.min_utility - 1e-12
        p2p_ok = (
            not job.requires_p2p
            or solution.p2p
            or not ctx.engine.p2p_attainable(job)
        )
        if utility_ok and p2p_ok:
            return True
        # nothing running: the state cannot improve by waiting
        if not co:
            return True
        if (
            self.max_postponements is not None
            and self.postponements.get(job.job_id, 0) >= self.max_postponements
        ):
            return True
        return False
