"""The paper's topology-aware scheduler (Algorithm 1).

Both policies run the same pipeline per queued job (oldest first):
filter hosts by constraints, map the job graph onto every candidate
pool with DRB (Algorithm 2 + 3), keep the highest-utility solution.

* **TOPO-AWARE** (``postpone=False``): the best available solution is
  always enforced as soon as resources exist, "without consideration
  for the future jobs".  Jobs with no feasible hosts are re-queued
  (Algorithm 1 pops every waiting job each iteration).
* **TOPO-AWARE-P** (``postpone=True``): additionally allows
  out-of-order execution by choice: a solution that does not satisfy
  the job's SLO -- utility below ``min_utility``, or no P2P for a
  P2P-requiring job -- is postponed to the next scheduler iteration,
  in the hope that finishing jobs free a better allocation.

Anti-starvation safeguards for the postponing policy: a job is placed
anyway when nothing is running (the state cannot improve), when its
P2P demand is unattainable on this hardware, or when an optional
postponement budget is exhausted.
"""

from __future__ import annotations

from repro.core.placement import PlacementSolution
from repro.obs import trace as _trace
from repro.schedulers.base import Scheduler, SchedulingContext
from repro.workload.job import Job


class TopoAwareScheduler(Scheduler):
    def __init__(
        self,
        postpone: bool = False,
        max_postponements: int | None = None,
    ) -> None:
        super().__init__()
        self.postpone = postpone
        self.max_postponements = max_postponements
        self.name = "TOPO-AWARE-P" if postpone else "TOPO-AWARE"

    def schedule(self, ctx: SchedulingContext) -> list[PlacementSolution]:
        placed: list[PlacementSolution] = []
        co = dict(ctx.co_runners)
        rec = ctx.recorder
        max_free = ctx.alloc.max_free_count()
        total_free = ctx.alloc.total_free_count()
        for entry in list(self._queue):
            job = entry.job
            with _trace.span(
                "sched.propose",
                job_id=job.job_id,
                scheduler=self.name,
                num_gpus=job.num_gpus,
                queued=len(self._queue),
            ) as sp:
                # capacity pruning: reject a job the cluster cannot hold
                # before DRB runs.  Same no-fit answer (filter_hosts
                # would return no pool), at O(1) per job — the aggregates
                # come from the allocator's maintained capacity-bucket
                # index — and unlike the old silent skip it still emits
                # the span and the no-fit outcome Algorithm 1's
                # per-iteration pop implies.
                if (job.single_node and job.num_gpus > max_free) or (
                    not job.single_node and job.num_gpus > total_free
                ):
                    sp.set(outcome="no-fit", reason="capacity")
                    if rec is not None:
                        rec.decision(
                            t=ctx.now,
                            scheduler=self.name,
                            job=job,
                            queued=len(self._queue),
                            verdict="no-fit",
                            reason="capacity",
                            capacity={
                                "max_free": max_free,
                                "total_free": total_free,
                                "single_node": job.single_node,
                                # hosts that could hold the job whole,
                                # straight off the bucket index (tap)
                                "eligible_hosts": (
                                    ctx.alloc.eligible_machine_count(
                                        job.num_gpus
                                    )
                                ),
                            },
                        )
                    continue
                prov = {} if rec is not None else None
                solution = ctx.engine.propose(job, co, provenance=prov)
                if solution is None:
                    # Algorithm 1 pops every queued job per iteration: a
                    # job with no feasible hosts right now is simply
                    # re-queued (unlike FCFS, the head never blocks
                    # later jobs).
                    sp.set(outcome="no-fit")
                    if rec is not None:
                        rec.decision(
                            t=ctx.now,
                            scheduler=self.name,
                            job=job,
                            queued=len(self._queue),
                            verdict="no-fit",
                            reason=prov.pop("reason", "no-feasible-pool"),
                            propose=prov,
                        )
                    continue
                sp.set(utility=solution.utility, p2p=solution.p2p)
                detail = {} if (rec is not None and self.postpone) else None
                if self.postpone and not self._acceptable(
                    ctx, job, solution, co, detail
                ):
                    self._note_postponed(job.job_id)
                    sp.set(
                        outcome="postponed",
                        postponements=self.postponements.get(job.job_id, 0),
                    )
                    if rec is not None:
                        rec.decision(
                            t=ctx.now,
                            scheduler=self.name,
                            job=job,
                            queued=len(self._queue),
                            verdict="postponed",
                            reason=(detail or {}).get("failed"),
                            solution=solution,
                            engine=ctx.engine,
                            propose=prov,
                            slo=detail,
                            postponements=self.postponements.get(job.job_id, 0),
                        )
                    continue
                self._place(ctx, job, solution, co)
                self._remove(job.job_id)
                placed.append(solution)
                sp.set(outcome="placed", gpus=len(solution.gpus))
                if rec is not None:
                    rec.decision(
                        t=ctx.now,
                        scheduler=self.name,
                        job=job,
                        queued=len(self._queue) + 1,
                        verdict="placed",
                        solution=solution,
                        engine=ctx.engine,
                        propose=prov,
                        slo=detail,
                        postponements=self.postponements.get(job.job_id, 0),
                    )
            max_free = ctx.alloc.max_free_count()
            total_free = ctx.alloc.total_free_count()
            if max_free == 0:
                break
        return placed

    # ------------------------------------------------------------------
    def _acceptable(
        self,
        ctx: SchedulingContext,
        job: Job,
        solution: PlacementSolution,
        co: dict,
        detail: dict | None = None,
    ) -> bool:
        """TOPO-AWARE-P's postponement test (False = postpone).

        ``detail`` (optional) is a provenance out-param filled with the
        SLO predicate inputs, which predicate failed (``"utility"`` or
        ``"p2p"``) and any anti-starvation override — read-only
        bookkeeping that preserves the predicate evaluation order, so
        attaching it changes no decision.
        """
        utility_ok = solution.utility >= job.min_utility - 1e-12
        p2p_ok = (
            not job.requires_p2p
            or solution.p2p
            or not ctx.engine.p2p_attainable(job)
        )
        if detail is not None:
            detail.update(
                min_utility=job.min_utility,
                utility=solution.utility,
                utility_ok=utility_ok,
                requires_p2p=job.requires_p2p,
                solution_p2p=solution.p2p,
                p2p_ok=p2p_ok,
                failed=(
                    None if utility_ok and p2p_ok
                    else ("utility" if not utility_ok else "p2p")
                ),
                override=None,
            )
        if utility_ok and p2p_ok:
            return True
        # nothing running: the state cannot improve by waiting
        if not co:
            if detail is not None:
                detail["override"] = "nothing-running"
            return True
        if (
            self.max_postponements is not None
            and self.postponements.get(job.job_id, 0) >= self.max_postponements
        ):
            if detail is not None:
                detail["override"] = "postponement-budget"
            return True
        return False
