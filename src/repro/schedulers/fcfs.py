"""First-Come-First-Served baseline (paper Section 5.2).

Strict FIFO: only the head of the queue is considered; if it does not
fit anywhere the whole queue waits (no backfilling).  GPU selection is
topology-blind first-fit: the lowest free GPU indices on the first
machine with enough capacity -- what a naive cloud scheduler does.
"""

from __future__ import annotations

from repro.core.placement import PlacementSolution
from repro.schedulers.base import Scheduler, SchedulingContext


class FCFSScheduler(Scheduler):
    name = "FCFS"

    def schedule(self, ctx: SchedulingContext) -> list[PlacementSolution]:
        placed: list[PlacementSolution] = []
        co = dict(ctx.co_runners)
        while self._queue:
            job = self._queue[0].job
            gpus = self._first_fit(ctx, job.num_gpus)
            if gpus is None:
                break  # head blocks the queue
            solution = ctx.engine.score_allocation(job, tuple(gpus), co)
            self._place(ctx, job, solution, co)
            self._remove(job.job_id)
            placed.append(solution)
        return placed

    @staticmethod
    def _first_fit(ctx: SchedulingContext, n: int) -> list[str] | None:
        for machine in ctx.topo.machines():
            if ctx.alloc.free_count(machine) < n:  # O(1) quick reject
                continue
            free = ctx.alloc.free_gpus(machine=machine)
            free.sort(key=ctx.topo.gpu_index_of)
            return free[:n]
        return None
