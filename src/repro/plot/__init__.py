"""Dependency-free SVG figure rendering (the artifact's ``src/plot/*``).

The paper's artifact ships plotting scripts that turn experiment
output into the published figures.  This environment has no plotting
stack, so :mod:`repro.plot.svg` implements minimal line/bar charts as
plain SVG and :mod:`repro.plot.figures` renders the headline figures
(4, 5, 6) to files.
"""

from repro.plot.svg import bar_chart, line_chart
from repro.plot.figures import render_all_figures

__all__ = ["bar_chart", "line_chart", "render_all_figures"]
