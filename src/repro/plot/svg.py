"""Minimal SVG chart primitives (no third-party plotting stack).

Line and grouped-bar charts sufficient for the paper's figures: axes,
ticks, legends, series colouring.  Output is a well-formed standalone
SVG string.
"""

from __future__ import annotations

from typing import Mapping, Sequence
from xml.sax.saxutils import escape

_COLORS = ("#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd", "#8c564b")

_W, _H = 640, 400
_ML, _MR, _MT, _MB = 70, 20, 40, 60  # margins


def _scale(lo: float, hi: float, span: float):
    if hi <= lo:
        hi = lo + 1.0
    return lambda v: (v - lo) / (hi - lo) * span


def _axes(title: str, x_label: str, y_label: str) -> list[str]:
    plot_w = _W - _ML - _MR
    plot_h = _H - _MT - _MB
    return [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_W}" height="{_H}" '
        f'viewBox="0 0 {_W} {_H}" font-family="sans-serif" font-size="12">',
        f'<rect width="{_W}" height="{_H}" fill="white"/>',
        f'<text x="{_W / 2}" y="20" text-anchor="middle" font-size="15">'
        f"{escape(title)}</text>",
        f'<line x1="{_ML}" y1="{_MT}" x2="{_ML}" y2="{_MT + plot_h}" stroke="black"/>',
        f'<line x1="{_ML}" y1="{_MT + plot_h}" x2="{_ML + plot_w}" '
        f'y2="{_MT + plot_h}" stroke="black"/>',
        f'<text x="{_ML + plot_w / 2}" y="{_H - 12}" text-anchor="middle">'
        f"{escape(x_label)}</text>",
        f'<text x="16" y="{_MT + plot_h / 2}" text-anchor="middle" '
        f'transform="rotate(-90 16 {_MT + plot_h / 2})">{escape(y_label)}</text>',
    ]


def _y_ticks(parts: list[str], lo: float, hi: float, sy) -> None:
    plot_h = _H - _MT - _MB
    for i in range(5):
        v = lo + (hi - lo) * i / 4
        y = _MT + plot_h - sy(v)
        parts.append(
            f'<line x1="{_ML - 4}" y1="{y:.1f}" x2="{_ML}" y2="{y:.1f}" stroke="black"/>'
        )
        parts.append(
            f'<text x="{_ML - 8}" y="{y + 4:.1f}" text-anchor="end">{v:.2f}</text>'
        )


def _legend(parts: list[str], names: Sequence[str]) -> None:
    for i, name in enumerate(names):
        x = _ML + 10 + i * 130
        color = _COLORS[i % len(_COLORS)]
        parts.append(
            f'<rect x="{x}" y="{_MT + 4}" width="12" height="12" fill="{color}"/>'
        )
        parts.append(
            f'<text x="{x + 16}" y="{_MT + 14}">{escape(name)}</text>'
        )


def line_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Multi-series line chart; each series is a list of (x, y)."""
    if not series or all(len(pts) == 0 for pts in series.values()):
        raise ValueError("line_chart needs at least one non-empty series")
    xs = [x for pts in series.values() for x, _ in pts]
    ys = [y for pts in series.values() for _, y in pts]
    sx = _scale(min(xs), max(xs), _W - _ML - _MR)
    lo, hi = min(min(ys), 0.0), max(ys)
    sy = _scale(lo, hi, _H - _MT - _MB)
    plot_h = _H - _MT - _MB
    parts = _axes(title, x_label, y_label)
    _y_ticks(parts, lo, hi, sy)
    for i, (name, pts) in enumerate(series.items()):
        color = _COLORS[i % len(_COLORS)]
        coords = " ".join(
            f"{_ML + sx(x):.1f},{_MT + plot_h - sy(y):.1f}" for x, y in pts
        )
        parts.append(
            f'<polyline points="{coords}" fill="none" stroke="{color}" '
            f'stroke-width="2"/>'
        )
    _legend(parts, list(series))
    parts.append("</svg>")
    return "\n".join(parts)


def bar_chart(
    groups: Sequence[str],
    series: Mapping[str, Sequence[float]],
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Grouped bar chart: one bar per (group, series) pair."""
    if not groups or not series:
        raise ValueError("bar_chart needs groups and series")
    for name, vals in series.items():
        if len(vals) != len(groups):
            raise ValueError(f"series {name!r} length != number of groups")
    ys = [v for vals in series.values() for v in vals]
    lo, hi = min(min(ys), 0.0), max(ys)
    sy = _scale(lo, hi, _H - _MT - _MB)
    plot_w = _W - _ML - _MR
    plot_h = _H - _MT - _MB
    group_w = plot_w / len(groups)
    bar_w = group_w * 0.8 / len(series)
    parts = _axes(title, x_label, y_label)
    _y_ticks(parts, lo, hi, sy)
    for gi, group in enumerate(groups):
        gx = _ML + gi * group_w
        parts.append(
            f'<text x="{gx + group_w / 2:.1f}" y="{_MT + plot_h + 16}" '
            f'text-anchor="middle">{escape(str(group))}</text>'
        )
        for si, (name, vals) in enumerate(series.items()):
            color = _COLORS[si % len(_COLORS)]
            h = sy(vals[gi])
            x = gx + group_w * 0.1 + si * bar_w
            parts.append(
                f'<rect x="{x:.1f}" y="{_MT + plot_h - h:.1f}" '
                f'width="{bar_w:.1f}" height="{h:.1f}" fill="{color}"/>'
            )
    _legend(parts, list(series))
    parts.append("</svg>")
    return "\n".join(parts)
