"""Render the headline paper figures to SVG files."""

from __future__ import annotations

from pathlib import Path

from repro.analysis.figures import (
    fig4_pack_vs_spread,
    fig5_nvlink_bandwidth,
    fig6_collocation,
)
from repro.plot.svg import bar_chart, line_chart
from repro.workload.job import BatchClass


def render_fig4(path: Path) -> None:
    data = fig4_pack_vs_spread()
    batches = data["batch_sizes"]
    series = {
        model: list(zip(batches, values))
        for model, values in data.items()
        if model != "batch_sizes"
    }
    path.write_text(
        line_chart(
            series,
            title="Figure 4: pack vs spread speedup",
            x_label="batch size (per GPU)",
            y_label="speedup",
        )
    )


def render_fig5(path: Path) -> None:
    data = fig5_nvlink_bandwidth()
    series = {
        f"batch {batch}": list(zip(times.tolist(), gbs.tolist()))
        for batch, (times, gbs) in sorted(data.items())
    }
    path.write_text(
        line_chart(
            series,
            title="Figure 5: NVLink bandwidth (AlexNet)",
            x_label="time (s)",
            y_label="GB/s",
        )
    )


def render_fig6(path: Path) -> None:
    data = fig6_collocation()
    classes = [c.name.lower() for c in BatchClass]
    series = {
        f"job2 {second}": [data[(first, second)] for first in classes]
        for second in classes
    }
    path.write_text(
        bar_chart(
            classes,
            series,
            title="Figure 6: co-location slowdown (2x AlexNet)",
            x_label="job 1 batch class",
            y_label="slowdown",
        )
    )


def render_all_figures(directory: str | Path) -> list[Path]:
    """Render figures 4, 5 and 6 as SVG files; returns the paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    out = []
    for name, renderer in (
        ("fig4_pack_vs_spread.svg", render_fig4),
        ("fig5_nvlink_bandwidth.svg", render_fig5),
        ("fig6_collocation.svg", render_fig6),
    ):
        path = directory / name
        renderer(path)
        out.append(path)
    return out
