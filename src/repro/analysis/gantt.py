"""Textual Gantt charts and utility timelines (Figure 8/9 panels).

The paper's Figure 8(a)-(d) shows, per scheduler, which job occupied
which GPU over time plus a bus-bandwidth strip; Figure 9 replaces the
strip with the mean utility of running jobs.  :func:`gantt_chart`
renders the occupancy panel as monospace text; :func:`utility_timeline`
computes the Figure 9 series from simulation records.
"""

from __future__ import annotations

import string
from typing import Sequence

import numpy as np

from repro.sim.engine import JobRecord, SimulationResult

_SYMBOLS = string.digits + string.ascii_uppercase + string.ascii_lowercase


def gantt_chart(
    result: SimulationResult,
    width: int = 64,
    gpus: Sequence[str] | None = None,
) -> str:
    """Render per-GPU occupancy over time as a text chart.

    Each row is a GPU, each column a time bucket; cells carry the
    job's symbol (job0 -> '0', job10 -> 'A', ...), '.' when idle.
    """
    if width < 10:
        raise ValueError("width must be >= 10")
    records = [r for r in result.records if r.placed_at is not None]
    if not records:
        return f"[{result.scheduler_name}] (nothing was placed)"
    horizon = max(
        r.finished_at if r.finished_at is not None else r.placed_at
        for r in records
    )
    if horizon <= 0:
        horizon = 1.0
    if gpus is None:
        gpus = sorted({g for r in records for g in r.gpus})
    symbol = {
        rec.job.job_id: _SYMBOLS[i % len(_SYMBOLS)]
        for i, rec in enumerate(result.records)
    }
    dt = horizon / width
    grid = {g: ["."] * width for g in gpus}
    for rec in records:
        end = rec.finished_at if rec.finished_at is not None else horizon
        first = int(rec.placed_at / dt)
        last = max(first, min(width - 1, int(end / dt) - (1 if end % dt == 0 else 0)))
        for g in rec.gpus:
            if g not in grid:
                continue
            for col in range(first, last + 1):
                grid[g][col] = symbol[rec.job.job_id]
    label_width = max(len(g) for g in gpus)
    lines = [f"[{result.scheduler_name}]  0s {'-' * (width - 12)} {horizon:.0f}s"]
    for g in gpus:
        lines.append(f"{g:<{label_width}} |{''.join(grid[g])}|")
    legend = "  ".join(
        f"{symbol[rec.job.job_id]}={rec.job.job_id}" for rec in result.records
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def utility_timeline(
    records: Sequence[JobRecord],
    n_samples: int = 100,
) -> tuple[np.ndarray, np.ndarray]:
    """Mean utility of the jobs running at each sampled time (Fig. 9).

    Times with no running job yield NaN so plots show gaps, like the
    paper's panels between job waves.
    """
    if n_samples < 2:
        raise ValueError("n_samples must be >= 2")
    placed = [r for r in records if r.placed_at is not None and r.utility is not None]
    if not placed:
        return np.array([0.0]), np.array([np.nan])
    horizon = max(
        r.finished_at if r.finished_at is not None else r.placed_at for r in placed
    )
    times = np.linspace(0.0, horizon, n_samples)
    means = np.full(n_samples, np.nan)
    for i, t in enumerate(times):
        running = [
            r.utility
            for r in placed
            if r.placed_at <= t
            and (r.finished_at is None or t < r.finished_at)
        ]
        if running:
            means[i] = float(np.mean(running))
    return times, means
