"""Textual Gantt charts and utility timelines (Figure 8/9 panels).

The paper's Figure 8(a)-(d) shows, per scheduler, which job occupied
which GPU over time plus a bus-bandwidth strip; Figure 9 replaces the
strip with the mean utility of running jobs.  Two data paths feed the
same renderer:

* :func:`gantt_chart` / :func:`utility_timeline` — post-hoc, from the
  :class:`JobRecord` list of a finished run;
* :class:`GanttObserver` / :class:`UtilityTimelineObserver` — live,
  as :class:`~repro.sim.hooks.SimObserver` hooks attached to a run
  (``Simulator(..., observers=[...])``).  The observers also see
  intermediate placements that a machine failure later voids, which
  records alone cannot reconstruct.
"""

from __future__ import annotations

import string
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.sim.engine import JobRecord, SimulationResult
from repro.sim.hooks import BaseObserver

_SYMBOLS = string.digits + string.ascii_uppercase + string.ascii_lowercase


@dataclass
class OccupancySpan:
    """One contiguous occupancy of a GPU set by one job."""

    job_id: str
    gpus: tuple[str, ...]
    start: float
    end: float | None  # None while still running / never finished


def _render_occupancy(
    title: str,
    job_order: Sequence[str],
    spans: Sequence[OccupancySpan],
    width: int,
    gpus: Sequence[str] | None,
) -> str:
    """Shared Gantt renderer over occupancy spans.

    Each row is a GPU, each column a time bucket; cells carry the
    job's symbol (job0 -> '0', job10 -> 'A', ...), '.' when idle.
    """
    if width < 10:
        raise ValueError("width must be >= 10")
    if not spans:
        return f"[{title}] (nothing was placed)"
    horizon = max(s.end if s.end is not None else s.start for s in spans)
    if horizon <= 0:
        horizon = 1.0
    if gpus is None:
        gpus = sorted({g for s in spans for g in s.gpus})
    symbol = {
        job_id: _SYMBOLS[i % len(_SYMBOLS)] for i, job_id in enumerate(job_order)
    }
    dt = horizon / width
    grid = {g: ["."] * width for g in gpus}
    for span in spans:
        end = span.end if span.end is not None else horizon
        first = int(span.start / dt)
        last = max(first, min(width - 1, int(end / dt) - (1 if end % dt == 0 else 0)))
        for g in span.gpus:
            if g not in grid:
                continue
            for col in range(first, last + 1):
                grid[g][col] = symbol[span.job_id]
    label_width = max(len(g) for g in gpus)
    lines = [f"[{title}]  0s {'-' * (width - 12)} {horizon:.0f}s"]
    for g in gpus:
        lines.append(f"{g:<{label_width}} |{''.join(grid[g])}|")
    legend = "  ".join(f"{symbol[j]}={j}" for j in job_order)
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def gantt_chart(
    result: SimulationResult,
    width: int = 64,
    gpus: Sequence[str] | None = None,
) -> str:
    """Render per-GPU occupancy over time as a text chart."""
    spans = [
        OccupancySpan(r.job.job_id, r.gpus, r.placed_at, r.end_time)
        for r in result.records
        if r.placed_at is not None
    ]
    job_order = [r.job.job_id for r in result.records]
    return _render_occupancy(result.scheduler_name, job_order, spans, width, gpus)


class GanttObserver(BaseObserver):
    """Collects occupancy spans live from the simulation event stream.

    Unlike :func:`gantt_chart`, which sees only each job's *final*
    placement, this observer records every placement segment — a job
    killed by a machine failure contributes its pre-failure span with
    the failure time as its end, then a new span once re-placed.
    """

    def __init__(self, name: str = "sim") -> None:
        self.name = name
        self.spans: list[OccupancySpan] = []
        self.job_order: list[str] = []
        self._open: dict[str, OccupancySpan] = {}

    def on_arrival(self, t, job):
        if job.job_id not in self.job_order:
            self.job_order.append(job.job_id)

    def on_place(self, t, job, solution, solo_exec_time, postponements):
        span = OccupancySpan(
            job.job_id, tuple(sorted(solution.gpus)), start=t, end=None
        )
        self._open[job.job_id] = span
        self.spans.append(span)

    def on_finish(self, t, job, gpus):
        span = self._open.pop(job.job_id, None)
        if span is not None:
            span.end = t

    def on_failure(self, t, machine, victims):
        for job in victims:
            span = self._open.pop(job.job_id, None)
            if span is not None:
                span.end = t

    def on_evict(self, t, job, gpus, reason):
        # close the bar at eviction time; a preempted/migrated job
        # opens a fresh span on its next on_place
        span = self._open.pop(job.job_id, None)
        if span is not None:
            span.end = t

    def chart(self, width: int = 64, gpus: Sequence[str] | None = None) -> str:
        return _render_occupancy(self.name, self.job_order, self.spans, width, gpus)


def comparison_charts(
    observers: Mapping[str, "GanttObserver"],
    width: int = 64,
    gpus: Sequence[str] | None = None,
) -> str:
    """One Gantt panel per policy (Figure 8's (a)-(d) side by side).

    ``observers`` maps policy name to the :class:`GanttObserver` that
    watched its run — the shape ``repro compare --gantt`` produces.
    """
    panels = [observers[name].chart(width, gpus) for name in observers]
    return "\n\n".join(panels)


def _mean_utility_series(
    intervals: Sequence[tuple[float, float | None, float]],
    n_samples: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample mean utility over (start, end, utility) intervals."""
    if n_samples < 2:
        raise ValueError("n_samples must be >= 2")
    if not intervals:
        return np.array([0.0]), np.array([np.nan])
    horizon = max(end if end is not None else start for start, end, _ in intervals)
    times = np.linspace(0.0, horizon, n_samples)
    means = np.full(n_samples, np.nan)
    for i, t in enumerate(times):
        running = [
            u
            for start, end, u in intervals
            if start <= t and (end is None or t < end)
        ]
        if running:
            means[i] = float(np.mean(running))
    return times, means


def utility_timeline(
    records: Sequence[JobRecord],
    n_samples: int = 100,
) -> tuple[np.ndarray, np.ndarray]:
    """Mean utility of the jobs running at each sampled time (Fig. 9).

    Times with no running job yield NaN so plots show gaps, like the
    paper's panels between job waves.
    """
    intervals = [
        (r.placed_at, r.end_time, r.utility)
        for r in records
        if r.placed_at is not None and r.utility is not None
    ]
    return _mean_utility_series(intervals, n_samples)


class UtilityTimelineObserver(BaseObserver):
    """Live Figure-9 series: per-placement utility intervals."""

    def __init__(self) -> None:
        self._intervals: list[list] = []  # [start, end|None, utility]
        self._open: dict[str, list] = {}

    def on_place(self, t, job, solution, solo_exec_time, postponements):
        if solution.utility is None:
            return
        interval = [t, None, solution.utility]
        self._open[job.job_id] = interval
        self._intervals.append(interval)

    def _close(self, t: float, job_id: str) -> None:
        interval = self._open.pop(job_id, None)
        if interval is not None:
            interval[1] = t

    def on_finish(self, t, job, gpus):
        self._close(t, job.job_id)

    def on_failure(self, t, machine, victims):
        for job in victims:
            self._close(t, job.job_id)

    def on_evict(self, t, job, gpus, reason):
        self._close(t, job.job_id)

    def series(self, n_samples: int = 100) -> tuple[np.ndarray, np.ndarray]:
        intervals = [(s, e, u) for s, e, u in self._intervals]
        return _mean_utility_series(intervals, n_samples)
