"""Experiment regeneration: one function per paper table/figure.

Each ``figN_*`` function returns plain data structures (dicts/arrays)
with the same series the paper plots; the benchmark harness prints and
shape-checks them, and EXPERIMENTS.md records paper-vs-measured.
"""

from repro.analysis.scenarios import table1_jobs, scenario1_jobs, scenario2_jobs
from repro.analysis.figures import (
    fig3_breakdown,
    fig4_pack_vs_spread,
    fig5_nvlink_bandwidth,
    fig6_collocation,
    fig8_prototype,
    fig9_sim_validation,
    fig10_scenario1,
    fig11_scenario2,
    sec32_pcie_vs_nvlink,
    sec553_overhead,
)
from repro.analysis.tables import (
    format_breakdown_table,
    format_collocation_table,
    format_scenario_table,
    format_speedup_table,
)

__all__ = [
    "fig10_scenario1",
    "fig11_scenario2",
    "fig3_breakdown",
    "fig4_pack_vs_spread",
    "fig5_nvlink_bandwidth",
    "fig6_collocation",
    "fig8_prototype",
    "fig9_sim_validation",
    "format_breakdown_table",
    "format_collocation_table",
    "format_scenario_table",
    "format_speedup_table",
    "scenario1_jobs",
    "scenario2_jobs",
    "sec32_pcie_vs_nvlink",
    "sec553_overhead",
    "table1_jobs",
]
