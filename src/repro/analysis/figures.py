"""Data generators for every figure of the paper's evaluation.

All functions are deterministic given their seeds and return plain
data; see DESIGN.md's experiment index for the figure-by-figure map.
"""

from __future__ import annotations

import os
from typing import Sequence

import numpy as np

from repro.analysis.scenarios import scenario1_jobs, scenario2_jobs, table1_jobs
from repro.perf.bandwidth import nvlink_bandwidth_series
from repro.perf.calibration import DEFAULT_CALIBRATION, MachineKind  # noqa: F401 (re-exported for callers)
from repro.perf.interference import InterferenceModel
from repro.perf.model import PerformanceModel, Placement
from repro.sim.engine import SimulationResult
from repro.sim.runner import run_comparison
from repro.sim.metrics import sorted_slowdowns
from repro.topology.allocation import AllocationState
from repro.topology.builders import cluster, power8_minsky, power8_pcie_k80
from repro.workload.job import BatchClass, Job, ModelType

SCHEDULERS = ("BF", "FCFS", "TOPO-AWARE", "TOPO-AWARE-P")


def _solo_job(model: ModelType, batch: int, n_gpus: int = 2) -> Job:
    return Job(f"solo-{model}-{batch}", model, batch, n_gpus)


# ---------------------------------------------------------------------------
# Figure 3: execution-time breakdown
# ---------------------------------------------------------------------------

def fig3_breakdown(iterations: int = 40) -> dict:
    """% of GPU compute vs communication per (model, batch class, strategy).

    Mirrors Figure 3's 40-iteration profiling runs; also returns the
    absolute seconds so the AlexNet anchors (~1 s compute at tiny,
    ~66 s at big, ~2 s comm throughout) can be checked.
    """
    topo = power8_minsky()
    perf = PerformanceModel(topo)
    out: dict = {}
    for model in ModelType:
        for batch_class in BatchClass:
            job = _solo_job(model, batch_class.representative_batch)
            for placement in Placement:
                gpus = perf.placement_gpus(job, placement)
                bd = perf.iteration_breakdown(job, gpus)
                out[(model.value, batch_class.name.lower(), placement.value)] = {
                    "compute_s": bd.compute_s * iterations,
                    "comm_s": bd.comm_s * iterations,
                    "comm_fraction": bd.comm_fraction,
                    "p2p": bd.p2p,
                }
    return out


# ---------------------------------------------------------------------------
# Figure 4: pack vs spread speedup
# ---------------------------------------------------------------------------

def fig4_pack_vs_spread(
    batch_sizes: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128),
    machine_factory=power8_minsky,
) -> dict[str, list[float]]:
    """Pack/spread speedup per model across batch sizes (Figure 4)."""
    topo = machine_factory()
    perf = PerformanceModel(topo)
    out: dict[str, list[float]] = {"batch_sizes": list(batch_sizes)}
    for model in ModelType:
        speedups = []
        for b in batch_sizes:
            job = _solo_job(model, b)
            pack = perf.iteration_time(job, perf.placement_gpus(job, Placement.PACK))
            spread = perf.iteration_time(
                job, perf.placement_gpus(job, Placement.SPREAD)
            )
            speedups.append(spread / pack)
        out[model.value] = speedups
    return out


# ---------------------------------------------------------------------------
# Figure 5: NVLink bandwidth over time
# ---------------------------------------------------------------------------

def fig5_nvlink_bandwidth(
    batch_sizes: Sequence[int] = (1, 4, 64, 128),
    duration_s: float = 250.0,
) -> dict[int, tuple[np.ndarray, np.ndarray]]:
    """AlexNet NVLink bandwidth time series per batch size (Figure 5)."""
    topo = power8_minsky()
    perf = PerformanceModel(topo)
    out = {}
    for b in batch_sizes:
        job = Job(f"alexnet-b{b}", ModelType.ALEXNET, b, 2, iterations=4000)
        gpus = perf.placement_gpus(job, Placement.PACK)
        out[b] = nvlink_bandwidth_series(job, perf, gpus, duration_s=duration_s)
    return out


# ---------------------------------------------------------------------------
# Figure 6: co-location slowdown
# ---------------------------------------------------------------------------

def fig6_collocation() -> dict[tuple[str, str], float]:
    """Slowdown of co-locating two 2-GPU AlexNet jobs (Figure 6).

    Reproduces the paper's measurement setup: both jobs share the
    Minsky machine in the interleaved (spread) configuration, which is
    the reference sharing level of the calibration.  Reported value is
    the worse of the two jobs' slowdowns, per batch-class pair.
    """
    topo = power8_minsky()
    intf = InterferenceModel(topo)
    out: dict[tuple[str, str], float] = {}
    gpus = topo.gpus()
    place_a = (gpus[0], gpus[2])  # interleaved across sockets
    place_b = (gpus[1], gpus[3])
    for first in BatchClass:
        for second in BatchClass:
            alloc = AllocationState(topo)
            job_a = Job("a", ModelType.ALEXNET, first.representative_batch, 2)
            job_b = Job("b", ModelType.ALEXNET, second.representative_batch, 2)
            alloc.allocate("a", place_a)
            alloc.allocate("b", place_b)
            slow_a, slow_b = intf.collocation_pair_slowdown(
                job_a, place_a, job_b, place_b, alloc
            )
            out[(first.name.lower(), second.name.lower())] = max(slow_a, slow_b)
    return out


# ---------------------------------------------------------------------------
# Section 3.2: NVLink vs PCIe machines
# ---------------------------------------------------------------------------

def sec32_pcie_vs_nvlink(
    batch_sizes: Sequence[int] = (1, 2, 8)
) -> dict[str, list[float]]:
    """AlexNet pack speedups on the NVLink vs the PCIe/K80 machine."""
    nvlink = fig4_pack_vs_spread(batch_sizes, power8_minsky)
    pcie = fig4_pack_vs_spread(batch_sizes, power8_pcie_k80)
    return {
        "batch_sizes": list(batch_sizes),
        "nvlink": nvlink[ModelType.ALEXNET.value],
        "pcie": pcie[ModelType.ALEXNET.value],
    }


# ---------------------------------------------------------------------------
# Figures 8/9: prototype scenario and simulation validation
# ---------------------------------------------------------------------------

def fig8_prototype(jobs: Sequence[Job] | None = None) -> dict[str, SimulationResult]:
    """Run the Table 1 scenario under all four schedulers (Figure 8)."""
    jobs = list(jobs) if jobs is not None else table1_jobs()
    return run_comparison(power8_minsky, jobs, SCHEDULERS)


def fig9_sim_validation(jobs: Sequence[Job] | None = None) -> dict:
    """Prototype-vs-simulation agreement on the Table 1 scenario (Figure 9).

    The prototype path (manifest + INI configs + enforcement layer) and
    the direct simulator path must produce identical schedules; the
    validation reports per-job completion-time deltas.
    """
    import tempfile

    from repro.prototype.config import write_sample_configs
    from repro.prototype.system import PrototypeSystem

    jobs = list(jobs) if jobs is not None else table1_jobs()
    direct = run_comparison(power8_minsky, jobs, SCHEDULERS)
    with tempfile.TemporaryDirectory() as tmp:
        write_sample_configs(tmp)
        system = PrototypeSystem.from_config_dir(tmp, jobs=jobs)
        proto_runs = {run.result.scheduler_name: run for run in system.run()}
    deltas: dict[str, dict[str, float]] = {}
    for name, direct_result in direct.items():
        proto_result = proto_runs[name].result
        per_job = {}
        for rec in direct_result.records:
            other = proto_result.record_of(rec.job.job_id)
            if rec.finished_at is not None and other.finished_at is not None:
                per_job[rec.job.job_id] = abs(rec.finished_at - other.finished_at)
        deltas[name] = per_job
    return {"direct": direct, "prototype": proto_runs, "deltas": deltas}


# ---------------------------------------------------------------------------
# Figures 10/11: large-scale scenarios
# ---------------------------------------------------------------------------

def fig10_scenario1(
    n_jobs: int = 100, n_machines: int = 5, seed: int = 42
) -> dict:
    """Scenario 1: 100 jobs on 5 machines (Figure 10)."""
    jobs = scenario1_jobs(n_jobs, seed)
    results = run_comparison(lambda: cluster(n_machines), jobs, SCHEDULERS)
    return {
        "results": results,
        "qos": {n: sorted_slowdowns(r.records) for n, r in results.items()},
        "total": {
            n: sorted_slowdowns(r.records, include_waiting=True)
            for n, r in results.items()
        },
    }


def full_scale() -> bool:
    """Whether benches should run the paper's full scenario-2 size."""
    return os.environ.get("REPRO_FULL_SCALE", "") not in ("", "0", "false")


def fig11_scenario2(
    n_jobs: int | None = None, n_machines: int | None = None, seed: int = 7
) -> dict:
    """Scenario 2: 10k jobs on 1k machines (Figure 11).

    Defaults to a 1/10-scale run (1000 jobs, 100 machines) so the
    benchmark suite stays fast; set ``REPRO_FULL_SCALE=1`` for the
    paper's full size.
    """
    if n_jobs is None or n_machines is None:
        if full_scale():
            n_jobs, n_machines = 10_000, 1000
        else:
            n_jobs, n_machines = 1000, 100
    jobs = scenario2_jobs(n_jobs, n_machines, seed)
    results = run_comparison(lambda: cluster(n_machines), jobs, SCHEDULERS)
    return {
        "n_jobs": n_jobs,
        "n_machines": n_machines,
        "results": results,
        "qos": {n: sorted_slowdowns(r.records) for n, r in results.items()},
        "total": {
            n: sorted_slowdowns(r.records, include_waiting=True)
            for n, r in results.items()
        },
    }


# ---------------------------------------------------------------------------
# Section 5.5.3: scheduler overhead
# ---------------------------------------------------------------------------

def sec553_overhead(scenario: dict | None = None) -> dict[str, float]:
    """Mean decision time per scheduling round, per policy.

    The paper reports ~3 s for the topology-aware policies vs ~0.45 s
    for the greedy ones on scenario 2; absolute times differ here but
    the topology-aware policies must cost several times more.
    """
    scenario = scenario or fig11_scenario2()
    return {
        name: result.mean_decision_time_s
        for name, result in scenario["results"].items()
    }
