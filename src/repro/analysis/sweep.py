"""Parameter sweeps over the simulator.

:func:`sweep` runs the scheduler comparison across a range of one
experimental knob (arrival rate, cluster size, utility weights, ...)
and collects per-policy series -- the machinery behind "where does
topology-awareness pay off" questions that the paper answers only at
two operating points (scenarios 1 and 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.sim.engine import SimulationResult
from repro.sim.runner import run_comparison
from repro.sim.metrics import (
    mean_waiting_time,
    qos_slowdown,
    slo_violations,
)


@dataclass(frozen=True)
class SweepPoint:
    """Results of all policies at one knob value."""

    value: float
    results: Mapping[str, SimulationResult]

    def metric(self, name: str, fn: Callable[[SimulationResult], float]) -> float:
        return fn(self.results[name])


def mean_qos_metric(result: SimulationResult) -> float:
    recs = [r for r in result.records if r.finished_at is not None]
    if not recs:
        return float("nan")
    return float(np.mean([qos_slowdown(r) for r in recs]))


def mean_wait_metric(result: SimulationResult) -> float:
    return mean_waiting_time(
        [r for r in result.records if r.finished_at is not None]
    )


def violations_metric(result: SimulationResult) -> float:
    return float(len(slo_violations(result.records)))


def sweep(
    values: Sequence[float],
    scenario: Callable[[float], tuple[Callable, Sequence]],
    schedulers: Sequence[str] = ("BF", "FCFS", "TOPO-AWARE", "TOPO-AWARE-P"),
) -> list[SweepPoint]:
    """Run the comparison at every knob value.

    ``scenario(value)`` returns ``(topo_factory, jobs)`` for that value.
    """
    points = []
    for value in values:
        topo_factory, jobs = scenario(value)
        results = run_comparison(topo_factory, list(jobs), schedulers)
        points.append(SweepPoint(value=float(value), results=results))
    return points


def series(
    points: Sequence[SweepPoint],
    metric: Callable[[SimulationResult], float],
) -> dict[str, list[float]]:
    """Per-policy metric series across the sweep."""
    if not points:
        return {}
    names = list(points[0].results)
    return {
        name: [metric(p.results[name]) for p in points] for name in names
    }


def format_sweep(
    points: Sequence[SweepPoint],
    metric: Callable[[SimulationResult], float],
    knob_name: str = "value",
) -> str:
    """Text table: one row per knob value, one column per policy."""
    data = series(points, metric)
    names = list(data)
    header = f"{knob_name:>10}" + "".join(f"{n:>15}" for n in names)
    lines = [header]
    for i, p in enumerate(points):
        row = "".join(f"{data[n][i]:>15.4f}" for n in names)
        lines.append(f"{p.value:>10.2f}{row}")
    return "\n".join(lines)
