"""Render decision-provenance journals for ``repro explain``.

The recorder (:mod:`repro.obs.provenance`) captures *what* the
scheduler knew; this module turns those records into the terminal
story a human asks for: "why did job X wait three rounds?", "what did
round 7 decide?".  Everything here is pure formatting over already-
validated record dicts — no simulation state, no engine imports.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def _fmt_float(value, digits: int = 4) -> str:
    if value is None:
        return "-"
    return f"{value:.{digits}f}"


def _pool_summary(pools: dict | None) -> str:
    """One line for the filter_hosts report attached to a decision."""
    if not pools:
        return "candidate pools: (not recorded)"
    pruned = pools.get("pruned") or {}
    prune_bits = ", ".join(
        f"{name}={count}" for name, count in pruned.items() if count
    )
    sizes = pools.get("pool_sizes") or []
    kind = "spanning pool" if pools.get("spanning") else "single-node pools"
    line = (
        f"candidate pools: {pools.get('eligible', 0)}/"
        f"{pools.get('machines', 0)} machines eligible ({kind}; "
        f"gpu counts {sizes or '[]'})"
    )
    if prune_bits:
        line += f"; pruned: {prune_bits}"
    prefilter = pools.get("prefilter")
    if prefilter:
        line += (
            f"\n  prefilter: probed {prefilter.get('considered', 0)} host(s) "
            f"(top-k={prefilter.get('k')}), skipped "
            f"{prefilter.get('pruned', 0)} capacity-eligible host(s) the "
            f"tightest-fit scan could never pick"
        )
    return line


def _memo_summary(memo: dict | None) -> str | None:
    if not memo:
        return None
    if not memo.get("enabled"):
        return "placement memo: disabled"
    return "placement memo: hit" if memo.get("hit") else "placement memo: miss"


def _utility_lines(utility: dict | None) -> list[str]:
    """The per-term breakdown: value, normalisation bounds, contribution."""
    if not utility:
        return []
    lines = [f"utility {_fmt_float(utility.get('value'))} ="]
    for name, term in (utility.get("terms") or {}).items():
        lo, hi = term.get("bounds", (None, None))
        lines.append(
            f"  {name:<14} value={_fmt_float(term.get('value'))} "
            f"norm={_fmt_float(term.get('norm'))} "
            f"bounds=[{_fmt_float(lo)}, {_fmt_float(hi)}] "
            f"weight={_fmt_float(term.get('weight'), 2)} "
            f"contribution={_fmt_float(term.get('contribution'))}"
        )
    return lines


def _slo_summary(slo: dict | None) -> list[str]:
    if not slo:
        return []
    lines = [
        "slo check: "
        f"utility {_fmt_float(slo.get('utility'))} >= "
        f"min_utility {_fmt_float(slo.get('min_utility'))} -> "
        f"{'ok' if slo.get('utility_ok') else 'FAIL'}; "
        f"p2p required={slo.get('requires_p2p')} "
        f"got={slo.get('solution_p2p')} -> "
        f"{'ok' if slo.get('p2p_ok') else 'FAIL'}"
    ]
    if slo.get("failed"):
        lines.append(f"  failing predicate: {slo['failed']}")
    if slo.get("override"):
        lines.append(f"  anti-starvation override: {slo['override']}")
    return lines


def _capacity_summary(capacity: dict | None) -> str | None:
    if not capacity:
        return None
    bound = "max_free" if capacity.get("single_node") else "total_free"
    return (
        f"capacity prune: needs more than {bound}="
        f"{capacity.get(bound)} free GPUs "
        f"(max_free={capacity.get('max_free')}, "
        f"total_free={capacity.get('total_free')})"
    )


def _evict_summary(evict: dict | None) -> list[str]:
    """The utility-delta justification attached to an evict verdict."""
    if not evict:
        return []
    kind = evict.get("kind", "preempt")
    lines = []
    if kind == "preempt":
        lines.append(
            f"preempted {evict.get('victim')} "
            f"(priority {evict.get('victim_priority')} < "
            f"{evict.get('job_priority')})"
        )
    else:
        lines.append(f"migrated {evict.get('victim')} to a better allocation")
    lines.append(
        f"  gain {_fmt_float(evict.get('gain'))} = "
        f"new utility {_fmt_float(evict.get('job_utility'))} - "
        f"victim utility {_fmt_float(evict.get('victim_utility'))} - "
        f"migration penalty {_fmt_float(evict.get('migration_penalty'))} "
        f"(> min gain {_fmt_float(evict.get('min_gain'))})"
    )
    return lines


def format_decision(record: dict) -> str:
    """Multi-line rendering of one decision record."""
    header = (
        f"[round {record.get('round', '?')} t={_fmt_float(record.get('t'), 1)}] "
        f"{record.get('scheduler', '?')} -> {record['verdict'].upper()}"
    )
    if record.get("reason"):
        header += f" ({record['reason']})"
    lines = [
        header,
        f"  job {record.get('job_id')} wants {record.get('num_gpus')} GPUs; "
        f"{record.get('queued')} queued; "
        f"postponements so far: {record.get('postponements', 0)}",
    ]
    cap = _capacity_summary(record.get("capacity"))
    if cap:
        lines.append(f"  {cap}")
    memo = _memo_summary(record.get("memo"))
    if memo:
        lines.append(f"  {memo}")
    lines.append(f"  {_pool_summary(record.get('pools'))}")
    candidates = record.get("candidates")
    if candidates:
        lines.append(f"  mappings evaluated: {len(candidates)}")
        for cand in candidates:
            machines = ",".join(cand.get("machines") or [])
            lines.append(
                f"    [{machines}] pool_gpus={cand.get('pool_gpus')} "
                f"utility={_fmt_float(cand.get('utility'))} "
                f"p2p={cand.get('p2p')}"
            )
    lines.extend(f"  {ln}" for ln in _utility_lines(record.get("utility")))
    lines.extend(f"  {ln}" for ln in _slo_summary(record.get("slo")))
    lines.extend(f"  {ln}" for ln in _evict_summary(record.get("evict")))
    if record.get("gpus") is not None:
        lines.append(
            f"  placement: gpus={record['gpus']} p2p={record.get('p2p')}"
        )
    return "\n".join(lines)


def format_job_explanation(job_id: str, records: Iterable[dict]) -> str:
    """The decision chain for one job, oldest decision first."""
    chain = [
        r
        for r in records
        if r.get("kind") == "decision" and r.get("job_id") == job_id
    ]
    if not chain:
        return f"no decision records for job {job_id!r}"
    chain.sort(key=lambda r: r.get("seq", 0))
    parts = [
        f"job {job_id}: {len(chain)} decision(s), "
        f"final verdict {chain[-1]['verdict']}"
    ]
    parts.extend(format_decision(r) for r in chain)
    return "\n\n".join(parts)


def format_round_explanation(round_no: int, records: Iterable[dict]) -> str:
    """Every decision one round made, in decision order."""
    decisions = [
        r
        for r in records
        if r.get("kind") == "decision" and r.get("round") == round_no
    ]
    if not decisions:
        return f"no decision records for round {round_no}"
    decisions.sort(key=lambda r: r.get("seq", 0))
    placed = sum(1 for r in decisions if r["verdict"] == "placed")
    parts = [
        f"round {round_no}: {len(decisions)} decision(s), {placed} placed"
    ]
    parts.extend(format_decision(r) for r in decisions)
    return "\n\n".join(parts)


def decision_summary_table(records: Sequence[dict]) -> str:
    """Compact one-row-per-decision table (the `repro explain` index)."""
    decisions = [r for r in records if r.get("kind") == "decision"]
    header = (
        f"{'seq':>5} {'round':>5} {'t':>8} {'job':<12} "
        f"{'gpus':>4} {'verdict':<9} {'reason':<16} {'utility':>8}"
    )
    lines = [header]
    for r in sorted(decisions, key=lambda r: r.get("seq", 0)):
        utility = (r.get("utility") or {}).get("value")
        lines.append(
            f"{r.get('seq', 0):>5} {r.get('round', 0):>5} "
            f"{r.get('t', 0.0):>8.1f} {str(r.get('job_id', '')):<12} "
            f"{r.get('num_gpus', 0):>4} {r['verdict']:<9} "
            f"{str(r.get('reason') or '-'):<16} "
            f"{_fmt_float(utility):>8}"
        )
    return "\n".join(lines)
