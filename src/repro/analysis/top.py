"""``repro top``: an htop-style terminal dashboard for a live daemon.

Pure rendering: every function here takes the JSON documents the
introspection endpoints serve (``/state``, ``/cluster``,
``/timeseries``, ``/alerts``, ``/jobs``) and returns a string — no
sockets, no timing, so the whole dashboard is unit-testable from
dicts.  The CLI polls the endpoints on an interval and repaints with
ANSI cursor-home/clear sequences.

Layout::

    repro top — TOPO-AWARE @ http://127.0.0.1:8642      phase: running
    sim 412.5s   rounds 213   queue 7   running 12   gpus 38/40 (95%)
    queue   ▁▂▄▆███▅▃▂  (0..9)
    running ▃▄▅▆▆▇▇███  (0..12)
    util    ▅▆▇▇██████  (0.32..0.95)
    cluster (machine: occupancy · fragmentation · link load)
      m0 [████████░░] 0.80  frag 0.20  link 1.50
      m1 [██████████] 1.00  frag 0.00  link 2.00
      ...
    alerts: 1 active
      ALERT [critical] queue-wait-p95-high: queue_wait_p95 > 3600 ...
"""

from __future__ import annotations

import math

#: eight-level block ramp used for sparklines
SPARK_BLOCKS = "▁▂▃▄▅▆▇█"

#: five-level ramp used for heatmap cells (fraction -> char)
HEAT_BLOCKS = " ░▒▓█"

#: ANSI repaint prefix: cursor home + clear-to-end (less flicker than
#: a full screen wipe)
CLEAR = "\x1b[H\x1b[J"


def sparkline(values, width: int = 40) -> str:
    """Render a series as Unicode block characters, newest right.

    NaNs render as spaces; a flat series renders mid-ramp so it stays
    visible.  ``values`` longer than ``width`` keep the newest points.
    """
    vals = [float(v) for v in values][-width:]
    if not vals:
        return ""
    finite = [v for v in vals if not math.isnan(v)]
    if not finite:
        return " " * len(vals)
    lo, hi = min(finite), max(finite)
    span = hi - lo
    out = []
    for v in vals:
        if math.isnan(v):
            out.append(" ")
        elif span <= 0:
            out.append(SPARK_BLOCKS[3])
        else:
            idx = int((v - lo) / span * (len(SPARK_BLOCKS) - 1))
            out.append(SPARK_BLOCKS[idx])
    return "".join(out)


def heat_cell(fraction: float) -> str:
    """One heatmap character for an occupancy fraction in [0, 1]."""
    if math.isnan(fraction):
        return "?"
    clamped = min(1.0, max(0.0, fraction))
    return HEAT_BLOCKS[round(clamped * (len(HEAT_BLOCKS) - 1))]


def occupancy_bar(fraction: float, width: int = 10) -> str:
    """A fixed-width fill bar (``[████░░░░░░]`` style, no brackets)."""
    if math.isnan(fraction):
        return "?" * width
    filled = round(min(1.0, max(0.0, fraction)) * width)
    return "█" * filled + "░" * (width - filled)


def _series_values(timeseries_doc: dict, name: str) -> list[float]:
    series = (timeseries_doc or {}).get("cluster", {}).get(name, {})
    return [point[1] for point in series.get("raw", [])]


def render_sparklines(timeseries_doc: dict, width: int = 40) -> list[str]:
    """Queue/running/utilization history lines from ``/timeseries``."""
    lines = []
    for label, name, fmt in (
        ("queue", "queue_depth", "g"),
        ("running", "running_jobs", "g"),
        ("util", "utilization", ".2f"),
    ):
        values = _series_values(timeseries_doc, name)
        if not values:
            continue
        lo, hi = min(values), max(values)
        lines.append(
            f"{label:>8} {sparkline(values, width)}  "
            f"({lo:{fmt}}..{hi:{fmt}})"
        )
    return lines


def render_heatmap(cluster_doc: dict, *, rows: int = 16,
                   width: int = 78) -> list[str]:
    """Per-machine occupancy/fragmentation/link-load lines.

    Up to ``rows`` machines get one annotated line each; larger fleets
    collapse into a compact grid of single heat cells (one character
    per machine) so a 1000-machine cluster still fits a terminal.
    """
    machines = (cluster_doc or {}).get("machines", {})
    if not machines:
        return ["  (no per-machine samples yet)"]
    names = sorted(machines)
    if len(names) <= rows:
        lines = []
        for name in names:
            doc = machines[name]
            occ = doc.get("occupancy", math.nan)
            frag = doc.get("fragmentation", math.nan)
            link = doc.get("link_load", math.nan)
            lines.append(
                f"  {name:>10} [{occupancy_bar(occ)}] {occ:4.2f}"
                f"  frag {frag:4.2f}  link {link:4.2f}"
            )
        return lines
    cells = "".join(
        heat_cell(machines[n].get("occupancy", math.nan)) for n in names
    )
    per_row = max(1, width - 4)
    grid = [
        "  " + cells[i:i + per_row] for i in range(0, len(cells), per_row)
    ]
    return [f"  {len(names)} machines (one cell each, occupancy):"] + grid


def render_alerts(alerts_doc: dict, *, limit: int = 5) -> list[str]:
    """Active-alert banner plus the most recent firings."""
    doc = alerts_doc or {}
    if not doc.get("enabled", False):
        return ["alerts: (no watchdog attached)"]
    active = doc.get("active", [])
    fired = doc.get("fired", [])
    lines = [
        f"alerts: {len(active)} active, {doc.get('fired_total', 0)} fired "
        f"({doc.get('rounds_evaluated', 0)} rounds evaluated)"
    ]
    for alert in fired[-limit:]:
        value = alert.get("value")
        shown = f"{value:.4g}" if isinstance(value, (int, float)) else "n/a"
        lines.append(
            f"  [{alert.get('severity')}] {alert.get('rule')}: "
            f"{alert.get('signal')} {alert.get('op')} "
            f"{alert.get('threshold')} (value {shown}) "
            f"round {alert.get('round')}"
        )
    return lines


def render_dashboard(
    docs: dict,
    *,
    url: str = "",
    width: int = 78,
) -> str:
    """The full ``repro top`` frame from endpoint documents.

    ``docs`` maps endpoint name (``state``, ``cluster``,
    ``timeseries``, ``alerts``) to its parsed JSON body; missing keys
    degrade to sensible placeholders, so a daemon without a sampler or
    watchdog still renders.
    """
    state = docs.get("state") or {}
    phase = "idle"
    if state.get("finished"):
        phase = "finished"
    elif state.get("schema") is not None:
        phase = "running"
    scheduler = state.get("scheduler", "?")
    header = f"repro top — {scheduler}" + (f" @ {url}" if url else "")
    lines = [
        f"{header:<{width - 16}}phase: {phase}",
        (
            f"sim {state.get('sim_time', 0.0):.1f}s"
            f"   rounds {state.get('decision_rounds', 0)}"
            f"   queue {state.get('queue_depth', 0)}"
            f"   running {len(state.get('running_jobs', []))}"
            f"   gpus {state.get('gpus_busy', 0)}"
            f"/{state.get('total_gpus', 0)}"
        ),
    ]
    spark = render_sparklines(docs.get("timeseries") or {}, width=width - 24)
    if spark:
        lines.append("")
        lines.extend(spark)
    lines.append("")
    lines.append("cluster (occupancy · fragmentation · link-sharing load)")
    lines.extend(render_heatmap(docs.get("cluster") or {}, width=width))
    lines.append("")
    lines.extend(render_alerts(docs.get("alerts") or {}))
    return "\n".join(lines)


__all__ = [
    "CLEAR",
    "heat_cell",
    "occupancy_bar",
    "render_alerts",
    "render_dashboard",
    "render_heatmap",
    "render_sparklines",
    "sparkline",
]
