"""Canonical workloads of the evaluation section.

* :func:`table1_jobs` -- the six-job prototype scenario of Table 1
  (models, batch sizes, GPU counts, minimum utilities and arrival times
  straight from the paper; iteration counts are calibrated so solo
  durations land in the 60-130 s band the paper's timelines show).
* :func:`scenario1_jobs` / :func:`scenario2_jobs` -- the Section 5.5
  workloads: Poisson arrivals, Binomial batch-class and model mixes.
  Arrival rates are scaled with cluster size so the load factor matches
  the paper's "few machines" and "heavily loaded" narratives (the paper
  fixes lambda = 10/min for its own trace timebase).
"""

from __future__ import annotations

from repro.workload.generator import GeneratorConfig, WorkloadGenerator
from repro.workload.job import Job, ModelType


def table1_jobs() -> list[Job]:
    """The Table 1 six-job scenario (see module docstring)."""
    return [
        Job("job0", ModelType.ALEXNET, 1, 1, min_utility=0.3, arrival_time=0.51,
            iterations=2500),
        Job("job1", ModelType.GOOGLENET, 4, 1, min_utility=0.3, arrival_time=15.03,
            iterations=450),
        Job("job2", ModelType.ALEXNET, 1, 1, min_utility=0.3, arrival_time=24.36,
            iterations=2500),
        Job("job3", ModelType.ALEXNET, 4, 2, min_utility=0.5, arrival_time=25.33,
            iterations=950),
        Job("job4", ModelType.ALEXNET, 1, 2, min_utility=0.5, arrival_time=29.33,
            iterations=1200),
        Job("job5", ModelType.CAFFEREF, 1, 2, min_utility=0.5, arrival_time=29.89,
            iterations=1300),
    ]


def scenario1_jobs(n_jobs: int = 100, seed: int = 42) -> list[Job]:
    """Scenario 1 workload: 100 jobs for a 5-machine cluster.

    Jobs run 60-300 s (the paper's trace durations); lambda is chosen
    so the 20-GPU cluster is loaded (~60%) but not saturated, matching
    Figure 10b's scale where waiting adds at most a fraction of the
    execution time.
    """
    cfg = GeneratorConfig(arrival_rate_per_min=2.2)
    return WorkloadGenerator(cfg, seed=seed).generate(n_jobs)


def fragmentation_jobs() -> list[Job]:
    """A fragmentation-heavy scenario for preemption/defrag evaluation.

    A wave of 1-GPU fillers — alternating short and long — packs the
    cluster; the shorts' completions leave single-GPU holes scattered
    across machines while the longs pin the rest.  Multi-GPU,
    higher-priority jobs then arrive: a placement-only policy must wait
    for the longs to drain, while TOPO-AWARE-PM can evict a long filler
    (checkpointed, not restarted) or consolidate the survivors to open
    a contiguous block.  Sized for two power8-minsky machines (8 GPUs).
    """
    jobs = []
    for i in range(8):
        iterations = 400 if i % 2 == 0 else 6000
        jobs.append(
            Job(f"filler{i}", ModelType.ALEXNET, 1, 1, min_utility=0.0,
                arrival_time=0.1 * i, iterations=iterations)
        )
    jobs.append(
        Job("big0", ModelType.ALEXNET, 4, 3, min_utility=0.4,
            arrival_time=40.0, iterations=900, priority=1)
    )
    jobs.append(
        Job("big1", ModelType.GOOGLENET, 4, 3, min_utility=0.4,
            arrival_time=45.0, iterations=500, priority=1)
    )
    return jobs


def scenario2_jobs(
    n_jobs: int = 10_000, n_machines: int = 1000, seed: int = 7
) -> list[Job]:
    """Scenario 2 workload: heavily loaded large cluster.

    The arrival rate scales with the machine count to keep the load
    factor high, ~85% ("even in a heavily loaded scenario", 5.5.2).
    """
    rate = 0.65 * n_machines  # jobs/minute
    cfg = GeneratorConfig(arrival_rate_per_min=rate)
    return WorkloadGenerator(cfg, seed=seed).generate(n_jobs)
