"""Decision-round benchmarking (the ``repro bench`` subcommand).

Times scheduler decision rounds at the paper's evaluation scales —
Figure 10 (scenario 1: 100 jobs on a 5-machine cluster) and Figure 11
(scenario 2: a large heavily-loaded cluster, scaled down by default so
a laptop finishes in seconds) — and emits a ``BENCH_*.json`` artifact
that forms the repository's performance trajectory: every point in the
file can be regression-checked by CI against a committed baseline.

The quantity tracked is ``mean_decision_time_s``, the wall clock spent
inside ``scheduler.schedule`` per decision round (the paper's §5.5.3
overhead metric: TOPO-AWARE ≈3 s vs FCFS ≈0.45 s per round at 10k-job
scale).  Placement-memo counters ride along so a speedup can be
attributed (cache hits vs raw fast-path gains), and every bench run
re-verifies bit-identical placements between the memoised and the
memo-disabled engine before reporting numbers.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.schedulers import make_scheduler
from repro.sim.cluster import ClusterState
from repro.sim.engine import Simulator
from repro.sim.records import SimulationResult
from repro.topology.builders import cluster
from repro.workload.job import Job

#: record fields compared by the equivalence check (mirrors the golden
#: equivalence tests: every measured output of a run, compared with
#: ``==`` — bit-identical floats, no tolerance).
RECORD_FIELDS = (
    "arrival",
    "placed_at",
    "finished_at",
    "gpus",
    "utility",
    "p2p",
    "solo_exec_time",
    "ideal_exec_time",
    "postponements",
    "unplaceable",
    "restarts",
)

#: benchmark scales: name -> (n_jobs, n_machines).  ``fig11`` defaults
#: to a 10x-scaled-down scenario 2 (the full 10k/1k run is a CI-hostile
#: multi-minute affair; pass explicit sizes for it).
SCALES = {
    "fig10": (100, 5),
    "fig11": (400, 40),
}

DEFAULT_SCHEDULERS = ("FCFS", "BF", "TOPO-AWARE", "TOPO-AWARE-P")


@dataclass
class BenchResult:
    """Everything one bench invocation measured."""

    scale: str
    n_jobs: int
    n_machines: int
    repeats: int
    schedulers: dict[str, dict] = field(default_factory=dict)
    equivalence: dict | None = None

    def as_dict(self) -> dict:
        out = {
            "bench": self.scale,
            "n_jobs": self.n_jobs,
            "n_machines": self.n_machines,
            "repeats": self.repeats,
            "platform": {
                "python": platform.python_version(),
                "machine": platform.machine(),
                "system": platform.system(),
            },
            "schedulers": self.schedulers,
        }
        if self.equivalence is not None:
            out["equivalence"] = self.equivalence
        return out


def _jobs_for(scale: str, n_jobs: int, n_machines: int) -> list[Job]:
    from repro.analysis.scenarios import scenario1_jobs, scenario2_jobs

    if scale == "fig10":
        return scenario1_jobs(n_jobs, seed=42)
    return scenario2_jobs(n_jobs, n_machines, seed=7)


def _run_once(
    jobs: Sequence[Job],
    n_machines: int,
    scheduler_name: str,
    *,
    memo_size: int | None = None,
    recorder=None,
) -> tuple[SimulationResult, float]:
    """One simulation on a fresh topology; returns (result, wall s)."""
    topo = cluster(n_machines)
    state = ClusterState(topo)
    if memo_size is not None:
        state.engine.memo_size = memo_size
    sim = Simulator(
        topo,
        make_scheduler(scheduler_name),
        list(jobs),
        cluster=state,
        observers=[recorder] if recorder is not None else (),
    )
    t0 = time.perf_counter()
    result = sim.run()
    wall = time.perf_counter() - t0
    return result, wall


def _records_identical(a: SimulationResult, b: SimulationResult) -> bool:
    if len(a.records) != len(b.records):
        return False
    for ra, rb in zip(a.records, b.records):
        if ra.job.job_id != rb.job.job_id:
            return False
        for name in RECORD_FIELDS:
            if getattr(ra, name) != getattr(rb, name):
                return False
    return True


def check_equivalence(
    jobs: Sequence[Job], n_machines: int, scheduler_name: str = "TOPO-AWARE"
) -> dict:
    """Fast path vs memo-disabled engine: placements must be identical.

    Complements the golden tests (which pin the fast path against
    committed seed-engine outputs at fixed scales) by re-proving, at
    whatever scale the bench runs, that memoisation changes no
    decision.  A third run with the decision-provenance recorder
    attached re-proves the recorder is a pure tap at this scale too
    (``recorder_identical``) and reports its recorded/dropped counters.
    """
    from repro.obs.provenance import DecisionRecorder

    memo, _ = _run_once(jobs, n_machines, scheduler_name)
    cold, _ = _run_once(jobs, n_machines, scheduler_name, memo_size=0)
    recorder = DecisionRecorder(journal=True)
    recorded, _ = _run_once(
        jobs, n_machines, scheduler_name, recorder=recorder
    )
    return {
        "scheduler": scheduler_name,
        "identical": _records_identical(memo, cold),
        "recorder_identical": _records_identical(memo, recorded),
        "memo_stats": memo.placement_stats,
        "decision_stats": recorder.counts(),
    }


def run_bench(
    scale: str = "fig10",
    *,
    n_jobs: int | None = None,
    n_machines: int | None = None,
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    repeats: int = 3,
    verify: bool = True,
) -> BenchResult:
    """Time decision rounds for each scheduler at one scale.

    Each scheduler runs ``repeats`` times on fresh topologies; the
    reported decision time is the *minimum* across repeats (the usual
    benchmarking convention: least-noise estimate of the true cost).
    """
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; choose from {sorted(SCALES)}")
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    default_jobs, default_machines = SCALES[scale]
    n_jobs = n_jobs if n_jobs is not None else default_jobs
    n_machines = n_machines if n_machines is not None else default_machines
    jobs = _jobs_for(scale, n_jobs, n_machines)

    bench = BenchResult(
        scale=scale, n_jobs=n_jobs, n_machines=n_machines, repeats=repeats
    )
    for name in schedulers:
        best: dict | None = None
        for _ in range(repeats):
            result, wall = _run_once(jobs, n_machines, name)
            row = {
                "wall_s": wall,
                "decision_time_s": result.decision_time_s,
                "decision_rounds": result.decision_rounds,
                "mean_decision_time_s": result.mean_decision_time_s,
                "makespan_s": result.makespan,
                "placement_stats": result.placement_stats,
            }
            if best is None or row["decision_time_s"] < best["decision_time_s"]:
                best = row
        bench.schedulers[name] = best
    if verify:
        bench.equivalence = check_equivalence(jobs, n_machines)
    return bench


def write_bench(bench: BenchResult, path: Path) -> Path:
    """Serialise a bench result as a ``BENCH_*.json`` artifact."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(bench.as_dict(), indent=2, sort_keys=True) + "\n")
    return path


def compare_to_baseline(
    bench: BenchResult, baseline_path: Path, threshold: float = 3.0
) -> list[str]:
    """Regression check against a committed ``BENCH_*.json``.

    Returns human-readable failure lines; empty = within budget.  A
    scheduler regresses when its mean decision time exceeds the
    baseline's by more than ``threshold``x — generous by design, since
    CI machines differ from the one that wrote the baseline.

    Raises :class:`OSError` when the baseline file is missing or
    unreadable and :class:`ValueError` when its contents are not a
    bench artifact — callers (``repro bench --check-against``) turn
    both into a one-line error and exit code 2.
    """
    baseline_path = Path(baseline_path)
    try:
        baseline = json.loads(baseline_path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"malformed baseline {baseline_path}: {exc}") from exc
    if not isinstance(baseline, dict) or not isinstance(
        baseline.get("schedulers", {}), dict
    ):
        raise ValueError(
            f"malformed baseline {baseline_path}: expected a BENCH_*.json "
            'object with a "schedulers" table'
        )
    failures: list[str] = []
    for name, row in bench.schedulers.items():
        base_row = baseline.get("schedulers", {}).get(name)
        if base_row is None:
            continue
        if not isinstance(base_row, dict) or not isinstance(
            base_row.get("mean_decision_time_s"), (int, float)
        ):
            raise ValueError(
                f"malformed baseline {baseline_path}: scheduler {name!r} "
                'row lacks a numeric "mean_decision_time_s"'
            )
        base = base_row["mean_decision_time_s"]
        cur = row["mean_decision_time_s"]
        if base > 0 and cur > base * threshold:
            failures.append(
                f"{name}: mean decision round {cur:.6f}s exceeds "
                f"{threshold:.1f}x the committed baseline {base:.6f}s"
            )
    if bench.equivalence is not None and not bench.equivalence["identical"]:
        failures.append(
            "fast-path equivalence check failed: memoised and cold engines "
            "produced different placements"
        )
    if bench.equivalence is not None and not bench.equivalence.get(
        "recorder_identical", True
    ):
        failures.append(
            "provenance equivalence check failed: attaching the decision "
            "recorder changed placements"
        )
    return failures


def format_bench(bench: BenchResult) -> str:
    """Terminal table for one bench run."""
    lines = [
        f"bench {bench.scale}: {bench.n_jobs} jobs / {bench.n_machines} "
        f"machines (best of {bench.repeats})",
        f"{'scheduler':<14}{'mean-round':>12}{'rounds':>8}{'total':>10}"
        f"{'memo-hit%':>10}",
    ]
    for name, row in bench.schedulers.items():
        stats = row.get("placement_stats") or {}
        hit_rate = stats.get("hit_rate")
        hit = f"{hit_rate * 100.0:9.1f}%" if hit_rate is not None else f"{'-':>10}"
        lines.append(
            f"{name:<14}{row['mean_decision_time_s'] * 1e3:>10.3f}ms"
            f"{row['decision_rounds']:>8d}{row['decision_time_s']:>9.3f}s"
            f"{hit}"
        )
    if bench.equivalence is not None:
        verdict = "OK" if bench.equivalence["identical"] else "MISMATCH"
        lines.append(
            f"equivalence ({bench.equivalence['scheduler']}, memo vs cold): "
            f"{verdict}"
        )
        if "recorder_identical" in bench.equivalence:
            rec_verdict = (
                "OK" if bench.equivalence["recorder_identical"] else "MISMATCH"
            )
            stats = bench.equivalence.get("decision_stats") or {}
            lines.append(
                f"equivalence ({bench.equivalence['scheduler']}, recorder "
                f"attached): {rec_verdict} "
                f"({stats.get('recorded', 0)} decisions recorded, "
                f"{stats.get('dropped', 0)} dropped)"
            )
    return "\n".join(lines)
