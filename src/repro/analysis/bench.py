"""Decision-round benchmarking (the ``repro bench`` subcommand).

Times scheduler decision rounds at the paper's evaluation scales —
Figure 10 (scenario 1: 100 jobs on a 5-machine cluster) and Figure 11
(scenario 2: a large heavily-loaded cluster, scaled down by default so
a laptop finishes in seconds) — and emits a ``BENCH_*.json`` artifact
that forms the repository's performance trajectory: every point in the
file can be regression-checked by CI against a committed baseline.

The quantity tracked is ``mean_decision_time_s``, the wall clock spent
inside ``scheduler.schedule`` per decision round (the paper's §5.5.3
overhead metric: TOPO-AWARE ≈3 s vs FCFS ≈0.45 s per round at 10k-job
scale).  Placement-memo, incremental-DRB and candidate-prefilter
counters ride along so a speedup can be attributed (cache hits vs raw
fast-path gains), and every bench run re-verifies bit-identical
placements across the whole fast-path matrix — memo-disabled, both
scaling fast paths off, each one alone — before reporting numbers.

The ``fastpath`` section times TOPO-AWARE with the incremental-DRB
split cache and the top-k candidate prefilter on vs off (interleaved
repeats, so machine-load drift hits both sides equally) and reports
the speedup; ``--seed-baseline`` lets the artifact additionally record
an externally measured pre-fast-path engine time (e.g. from a checkout
of the commit before the fast paths landed) for the full
seed-vs-current trajectory.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.schedulers import make_scheduler
from repro.sim.cluster import ClusterState
from repro.sim.engine import Simulator
from repro.sim.records import SimulationResult
from repro.topology.builders import cluster
from repro.workload.job import Job

#: record fields compared by the equivalence check (mirrors the golden
#: equivalence tests: every measured output of a run, compared with
#: ``==`` — bit-identical floats, no tolerance).
RECORD_FIELDS = (
    "arrival",
    "placed_at",
    "finished_at",
    "gpus",
    "utility",
    "p2p",
    "solo_exec_time",
    "ideal_exec_time",
    "postponements",
    "unplaceable",
    "restarts",
)

#: benchmark scales: name -> (n_jobs, n_machines).  ``fig11`` runs the
#: paper's full 1000-machine scenario-2 cluster (the scaling fast
#: paths keep a 300-job run in CI-friendly seconds; the paper's full
#: 10k-job trace is still a multi-minute affair — pass explicit
#: ``--jobs`` for it).
SCALES = {
    "fig10": (100, 5),
    "fig11": (300, 1000),
}

DEFAULT_SCHEDULERS = ("FCFS", "BF", "TOPO-AWARE", "TOPO-AWARE-P")


@dataclass
class BenchResult:
    """Everything one bench invocation measured."""

    scale: str
    n_jobs: int
    n_machines: int
    repeats: int
    schedulers: dict[str, dict] = field(default_factory=dict)
    equivalence: dict | None = None
    fastpath: dict | None = None

    def as_dict(self) -> dict:
        out = {
            "bench": self.scale,
            "n_jobs": self.n_jobs,
            "n_machines": self.n_machines,
            "repeats": self.repeats,
            "platform": {
                "python": platform.python_version(),
                "machine": platform.machine(),
                "system": platform.system(),
            },
            "schedulers": self.schedulers,
        }
        if self.equivalence is not None:
            out["equivalence"] = self.equivalence
        if self.fastpath is not None:
            out["fastpath"] = self.fastpath
        return out


def _jobs_for(scale: str, n_jobs: int, n_machines: int) -> list[Job]:
    from repro.analysis.scenarios import scenario1_jobs, scenario2_jobs

    if scale == "fig10":
        return scenario1_jobs(n_jobs, seed=42)
    return scenario2_jobs(n_jobs, n_machines, seed=7)


def _run_once(
    jobs: Sequence[Job],
    n_machines: int,
    scheduler_name: str,
    *,
    memo_size: int | None = None,
    recorder=None,
    incremental_drb: bool = True,
    prefilter: bool = True,
) -> tuple[SimulationResult, float]:
    """One simulation on a fresh topology; returns (result, wall s)."""
    topo = cluster(n_machines)
    state = ClusterState(
        topo, incremental_drb=incremental_drb, prefilter=prefilter
    )
    if memo_size is not None:
        state.engine.memo_size = memo_size
    sim = Simulator(
        topo,
        make_scheduler(scheduler_name),
        list(jobs),
        cluster=state,
        observers=[recorder] if recorder is not None else (),
    )
    t0 = time.perf_counter()
    result = sim.run()
    wall = time.perf_counter() - t0
    return result, wall


def _records_identical(a: SimulationResult, b: SimulationResult) -> bool:
    if len(a.records) != len(b.records):
        return False
    for ra, rb in zip(a.records, b.records):
        if ra.job.job_id != rb.job.job_id:
            return False
        for name in RECORD_FIELDS:
            if getattr(ra, name) != getattr(rb, name):
                return False
    return True


def check_equivalence(
    jobs: Sequence[Job], n_machines: int, scheduler_name: str = "TOPO-AWARE"
) -> dict:
    """Every engine fast path vs the plain engine: placements must match.

    Complements the golden tests (which pin the fast path against
    committed seed-engine outputs at fixed scales) by re-proving, at
    whatever scale the bench runs, that no fast path changes a
    decision:

    * ``identical`` — placement memo on vs memo disabled;
    * ``fastpath_off_identical`` — incremental DRB + candidate
      prefilter both disabled;
    * ``drb_only_identical`` / ``prefilter_only_identical`` — each
      scaling fast path alone (mixed configurations);
    * ``recorder_identical`` — the decision-provenance recorder
      attached (pure-tap proof), with its recorded/dropped counters.
    """
    from repro.obs.provenance import DecisionRecorder

    memo, _ = _run_once(jobs, n_machines, scheduler_name)
    cold, _ = _run_once(jobs, n_machines, scheduler_name, memo_size=0)
    off, _ = _run_once(
        jobs, n_machines, scheduler_name,
        incremental_drb=False, prefilter=False,
    )
    drb_only, _ = _run_once(
        jobs, n_machines, scheduler_name,
        incremental_drb=True, prefilter=False,
    )
    pf_only, _ = _run_once(
        jobs, n_machines, scheduler_name,
        incremental_drb=False, prefilter=True,
    )
    recorder = DecisionRecorder(journal=True)
    recorded, _ = _run_once(
        jobs, n_machines, scheduler_name, recorder=recorder
    )
    return {
        "scheduler": scheduler_name,
        "identical": _records_identical(memo, cold),
        "fastpath_off_identical": _records_identical(memo, off),
        "drb_only_identical": _records_identical(memo, drb_only),
        "prefilter_only_identical": _records_identical(memo, pf_only),
        "recorder_identical": _records_identical(memo, recorded),
        "memo_stats": memo.placement_stats,
        "decision_stats": recorder.counts(),
    }


def measure_fastpath(
    jobs: Sequence[Job],
    n_machines: int,
    scheduler_name: str = "TOPO-AWARE",
    *,
    repeats: int = 3,
    seed_baseline_s: float | None = None,
) -> dict:
    """Time the scaling fast paths on vs off for one scheduler.

    The on/off runs are *interleaved* across repeats so machine-load
    drift hits both sides equally, and the best (minimum) decision
    time per side is compared.  ``seed_baseline_s`` (optional) is an
    externally measured mean decision time of the engine *before* the
    fast paths existed — e.g. from a checkout of the seed commit run
    on the same machine — recorded verbatim with the derived speedup
    so the artifact carries the full trajectory, not just the
    flag-gated share of it.
    """
    best_fast: dict | None = None
    best_off = float("inf")
    for _ in range(max(1, repeats)):
        fast, _ = _run_once(jobs, n_machines, scheduler_name)
        off, _ = _run_once(
            jobs, n_machines, scheduler_name,
            incremental_drb=False, prefilter=False,
        )
        if best_fast is None or (
            fast.mean_decision_time_s < best_fast["mean_decision_time_s"]
        ):
            best_fast = {
                "mean_decision_time_s": fast.mean_decision_time_s,
                "drb_stats": fast.drb_stats,
                "prefilter_stats": fast.prefilter_stats,
            }
        best_off = min(best_off, off.mean_decision_time_s)
    out = {
        "scheduler": scheduler_name,
        "fast_mean_decision_time_s": best_fast["mean_decision_time_s"],
        "off_mean_decision_time_s": best_off,
        "speedup_vs_off": (
            best_off / best_fast["mean_decision_time_s"]
            if best_fast["mean_decision_time_s"] > 0
            else 0.0
        ),
        "drb_stats": best_fast["drb_stats"],
        "prefilter_stats": best_fast["prefilter_stats"],
    }
    if seed_baseline_s is not None:
        out["seed_mean_decision_time_s"] = seed_baseline_s
        out["speedup_vs_seed"] = (
            seed_baseline_s / best_fast["mean_decision_time_s"]
            if best_fast["mean_decision_time_s"] > 0
            else 0.0
        )
    return out


def run_bench(
    scale: str = "fig10",
    *,
    n_jobs: int | None = None,
    n_machines: int | None = None,
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    repeats: int = 3,
    verify: bool = True,
    fastpath: bool = True,
    seed_baseline_s: float | None = None,
) -> BenchResult:
    """Time decision rounds for each scheduler at one scale.

    Each scheduler runs ``repeats`` times on fresh topologies; the
    reported decision time is the *minimum* across repeats (the usual
    benchmarking convention: least-noise estimate of the true cost).
    With ``fastpath=True`` (default) a TOPO-AWARE on/off comparison of
    the scaling fast paths (incremental DRB + candidate prefilter) is
    measured and attached as the ``fastpath`` section.
    """
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; choose from {sorted(SCALES)}")
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    default_jobs, default_machines = SCALES[scale]
    n_jobs = n_jobs if n_jobs is not None else default_jobs
    n_machines = n_machines if n_machines is not None else default_machines
    jobs = _jobs_for(scale, n_jobs, n_machines)

    bench = BenchResult(
        scale=scale, n_jobs=n_jobs, n_machines=n_machines, repeats=repeats
    )
    for name in schedulers:
        best: dict | None = None
        for _ in range(repeats):
            result, wall = _run_once(jobs, n_machines, name)
            row = {
                "wall_s": wall,
                "decision_time_s": result.decision_time_s,
                "decision_rounds": result.decision_rounds,
                "mean_decision_time_s": result.mean_decision_time_s,
                "makespan_s": result.makespan,
                "placement_stats": result.placement_stats,
            }
            if result.drb_stats:
                row["drb_stats"] = result.drb_stats
            if result.prefilter_stats:
                row["prefilter_stats"] = result.prefilter_stats
            if best is None or row["decision_time_s"] < best["decision_time_s"]:
                best = row
        bench.schedulers[name] = best
    if fastpath:
        bench.fastpath = measure_fastpath(
            jobs,
            n_machines,
            repeats=repeats,
            seed_baseline_s=seed_baseline_s,
        )
    if verify:
        bench.equivalence = check_equivalence(jobs, n_machines)
    return bench


def write_bench(bench: BenchResult, path: Path) -> Path:
    """Serialise a bench result as a ``BENCH_*.json`` artifact."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(bench.as_dict(), indent=2, sort_keys=True) + "\n")
    return path


def compare_to_baseline(
    bench: BenchResult,
    baseline_path: Path,
    threshold: float = 3.0,
    min_speedup: float | None = None,
) -> list[str]:
    """Regression check against a committed ``BENCH_*.json``.

    Returns human-readable failure lines; empty = within budget.  A
    scheduler regresses when its mean decision time exceeds the
    baseline's by more than ``threshold``x — generous by design, since
    CI machines differ from the one that wrote the baseline.

    ``min_speedup`` (optional) additionally gates the measured
    fast-path speedup: the run fails when the on/off ratio in the
    ``fastpath`` section falls below it.  The ratio is computed from
    interleaved same-machine runs, so unlike absolute times it is
    largely load-independent — CI can hold it to a floor.

    Raises :class:`OSError` when the baseline file is missing or
    unreadable and :class:`ValueError` when its contents are not a
    bench artifact — callers (``repro bench --check-against``) turn
    both into a one-line error and exit code 2.
    """
    baseline_path = Path(baseline_path)
    try:
        baseline = json.loads(baseline_path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"malformed baseline {baseline_path}: {exc}") from exc
    if not isinstance(baseline, dict) or not isinstance(
        baseline.get("schedulers", {}), dict
    ):
        raise ValueError(
            f"malformed baseline {baseline_path}: expected a BENCH_*.json "
            'object with a "schedulers" table'
        )
    failures: list[str] = []
    for name, row in bench.schedulers.items():
        base_row = baseline.get("schedulers", {}).get(name)
        if base_row is None:
            continue
        if not isinstance(base_row, dict) or not isinstance(
            base_row.get("mean_decision_time_s"), (int, float)
        ):
            raise ValueError(
                f"malformed baseline {baseline_path}: scheduler {name!r} "
                'row lacks a numeric "mean_decision_time_s"'
            )
        base = base_row["mean_decision_time_s"]
        cur = row["mean_decision_time_s"]
        if base > 0 and cur > base * threshold:
            failures.append(
                f"{name}: mean decision round {cur:.6f}s exceeds "
                f"{threshold:.1f}x the committed baseline {base:.6f}s"
            )
    if bench.equivalence is not None and not bench.equivalence["identical"]:
        failures.append(
            "fast-path equivalence check failed: memoised and cold engines "
            "produced different placements"
        )
    for key, what in (
        ("fastpath_off_identical", "disabling incremental DRB + prefilter"),
        ("drb_only_identical", "running incremental DRB alone"),
        ("prefilter_only_identical", "running the candidate prefilter alone"),
    ):
        if bench.equivalence is not None and not bench.equivalence.get(
            key, True
        ):
            failures.append(
                f"fast-path equivalence check failed: {what} "
                "changed placements"
            )
    if bench.equivalence is not None and not bench.equivalence.get(
        "recorder_identical", True
    ):
        failures.append(
            "provenance equivalence check failed: attaching the decision "
            "recorder changed placements"
        )
    if min_speedup is not None and bench.fastpath is not None:
        measured = bench.fastpath.get("speedup_vs_off", 0.0)
        if measured < min_speedup:
            failures.append(
                f"fast-path speedup {measured:.2f}x below the required "
                f"{min_speedup:.2f}x (on/off, interleaved)"
            )
    return failures


def format_bench(bench: BenchResult) -> str:
    """Terminal table for one bench run."""
    lines = [
        f"bench {bench.scale}: {bench.n_jobs} jobs / {bench.n_machines} "
        f"machines (best of {bench.repeats})",
        f"{'scheduler':<14}{'mean-round':>12}{'rounds':>8}{'total':>10}"
        f"{'memo-hit%':>10}",
    ]
    for name, row in bench.schedulers.items():
        stats = row.get("placement_stats") or {}
        hit_rate = stats.get("hit_rate")
        hit = f"{hit_rate * 100.0:9.1f}%" if hit_rate is not None else f"{'-':>10}"
        lines.append(
            f"{name:<14}{row['mean_decision_time_s'] * 1e3:>10.3f}ms"
            f"{row['decision_rounds']:>8d}{row['decision_time_s']:>9.3f}s"
            f"{hit}"
        )
    if bench.fastpath is not None:
        fp = bench.fastpath
        line = (
            f"fastpath ({fp['scheduler']}): "
            f"{fp['fast_mean_decision_time_s'] * 1e3:.3f}ms on vs "
            f"{fp['off_mean_decision_time_s'] * 1e3:.3f}ms off "
            f"-> {fp['speedup_vs_off']:.2f}x"
        )
        if "speedup_vs_seed" in fp:
            line += (
                f" ({fp['speedup_vs_seed']:.2f}x vs seed engine "
                f"{fp['seed_mean_decision_time_s'] * 1e3:.3f}ms)"
            )
        lines.append(line)
        drb = fp.get("drb_stats") or {}
        pf = fp.get("prefilter_stats") or {}
        if drb or pf:
            lines.append(
                "  drb: "
                f"{drb.get('splits_reused', 0)} splits reused / "
                f"{drb.get('splits_computed', 0)} computed "
                f"(reuse {drb.get('split_reuse_rate', 0.0) * 100.0:.1f}%, "
                f"{drb.get('rounds_incremental', 0)} rounds patched, "
                f"{drb.get('rounds_rebuilt', 0)} rebuilt); "
                "prefilter: "
                f"{pf.get('considered', 0)} hosts probed / "
                f"{pf.get('pruned', 0)} skipped "
                f"(prune {pf.get('prune_rate', 0.0) * 100.0:.1f}%)"
            )
    if bench.equivalence is not None:
        verdict = "OK" if bench.equivalence["identical"] else "MISMATCH"
        lines.append(
            f"equivalence ({bench.equivalence['scheduler']}, memo vs cold): "
            f"{verdict}"
        )
        fp_keys = (
            ("fastpath_off_identical", "both off"),
            ("drb_only_identical", "drb only"),
            ("prefilter_only_identical", "prefilter only"),
        )
        fp_bits = [
            f"{label}: {'OK' if bench.equivalence[key] else 'MISMATCH'}"
            for key, label in fp_keys
            if key in bench.equivalence
        ]
        if fp_bits:
            lines.append(
                "equivalence (fast-path matrix): " + "; ".join(fp_bits)
            )
        if "recorder_identical" in bench.equivalence:
            rec_verdict = (
                "OK" if bench.equivalence["recorder_identical"] else "MISMATCH"
            )
            stats = bench.equivalence.get("decision_stats") or {}
            lines.append(
                f"equivalence ({bench.equivalence['scheduler']}, recorder "
                f"attached): {rec_verdict} "
                f"({stats.get('recorded', 0)} decisions recorded, "
                f"{stats.get('dropped', 0)} dropped)"
            )
    return "\n".join(lines)
