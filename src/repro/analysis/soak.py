"""``repro soak``: replay a bursty trace against a live daemon.

The ROADMAP's missing piece: Figs. 10–11 are time-series claims, so
the service needs a harness that runs for *wall-clock* minutes under
bursty load while the windowed SLO watchdog and the continuous-
telemetry sampler watch — and that emits a machine-checkable verdict
CI can gate on.

:func:`run_soak` drives a daemon over its real HTTP API (either an
external ``--url`` or an in-process daemon it starts itself), firing a
burst of generated jobs every ``burst_every_s`` seconds and closing an
observation *window* every ``window_s`` seconds.  Each window polls
``/jobs``, ``/state`` and ``/alerts`` and rules **clean** when no
alert is active and none fired inside the window, **violations**
otherwise.  The run's verdict is clean iff every window is.

The artifact is a schema-versioned ``SOAK_*.json`` through the same
pattern the bench artifacts use (:mod:`repro.analysis.bench`): a
dataclass ``as_dict()`` with platform info, written by
:func:`write_soak`, asserted by ``scripts/soak_smoke.py`` in CI.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path

#: artifact document version (bump on breaking shape changes)
SOAK_SCHEMA_VERSION = 1


@dataclass
class SoakWindow:
    """One observation window's verdict."""

    index: int
    t_s: float  # wall-clock offset from soak start at window close
    submitted: int  # cumulative accepted submissions
    queue_depth: int
    running_jobs: int
    utilization: float
    alerts_active: list = field(default_factory=list)
    alerts_fired_total: int = 0
    fired_delta: int = 0
    verdict: str = "clean"

    def as_dict(self) -> dict:
        return {
            "window": self.index,
            "t_s": round(self.t_s, 3),
            "submitted": self.submitted,
            "queue_depth": self.queue_depth,
            "running_jobs": self.running_jobs,
            "utilization": round(self.utilization, 6),
            "alerts_active": list(self.alerts_active),
            "alerts_fired_total": self.alerts_fired_total,
            "fired_delta": self.fired_delta,
            "verdict": self.verdict,
        }


@dataclass
class SoakResult:
    """Everything one soak invocation measured."""

    scheduler: str
    url: str
    minutes: float
    window_s: float
    jobs_per_burst: int
    burst_every_s: float
    seed: int
    watchdog_enabled: bool = False
    bursts: int = 0
    submitted: int = 0
    rejected: int = 0
    windows: list = field(default_factory=list)
    timeseries_samples: int = 0
    timeseries_machines: int = 0
    alerts_fired_total: int = 0
    verdict: str = "clean"

    def as_dict(self) -> dict:
        return {
            "schema": SOAK_SCHEMA_VERSION,
            "soak": {
                "scheduler": self.scheduler,
                "url": self.url,
                "minutes": self.minutes,
                "window_s": self.window_s,
                "jobs_per_burst": self.jobs_per_burst,
                "burst_every_s": self.burst_every_s,
                "seed": self.seed,
            },
            "platform": {
                "python": platform.python_version(),
                "machine": platform.machine(),
                "system": platform.system(),
            },
            "watchdog_enabled": self.watchdog_enabled,
            "bursts": self.bursts,
            "submitted": self.submitted,
            "rejected": self.rejected,
            "windows": [w.as_dict() for w in self.windows],
            "timeseries_samples": self.timeseries_samples,
            "timeseries_machines": self.timeseries_machines,
            "alerts_fired_total": self.alerts_fired_total,
            "verdict": self.verdict,
        }


def _get(client, path: str) -> dict:
    status, doc = client.request("GET", path)
    if status != 200:
        raise RuntimeError(f"GET {path} answered {status}")
    return doc


def _close_window(
    client, index: int, t_s: float, submitted: int, fired_before: int
) -> SoakWindow:
    jobs_doc = _get(client, "/jobs")
    state_doc = _get(client, "/state")
    alerts_doc = _get(client, "/alerts")
    total = state_doc.get("total_gpus") or 0
    busy = state_doc.get("gpus_busy") or 0
    active = list(alerts_doc.get("active", []))
    fired_total = int(alerts_doc.get("fired_total", 0))
    delta = fired_total - fired_before
    window = SoakWindow(
        index=index,
        t_s=t_s,
        submitted=submitted,
        queue_depth=int(jobs_doc.get("queue_depth", 0)),
        running_jobs=len(state_doc.get("running_jobs", [])),
        utilization=busy / total if total else 0.0,
        alerts_active=active,
        alerts_fired_total=fired_total,
        fired_delta=delta,
        verdict="clean" if not active and delta == 0 else "violations",
    )
    return window


def run_soak(
    *,
    url: str | None = None,
    minutes: float = 5.0,
    window_s: float = 10.0,
    jobs_per_burst: int = 20,
    burst_every_s: float = 5.0,
    seed: int = 42,
    arrival_rate: float = 2.2,
    topo_factory=None,
    scheduler: str = "TOPO-AWARE",
    rules=None,
    progress=None,
) -> SoakResult:
    """Soak a daemon for ``minutes`` of wall clock; return the verdict.

    With ``url`` the harness drives an already-running daemon (start
    it with ``repro serve --watchdog`` so windows carry real SLO
    verdicts).  Without, it builds an in-process daemon — windowed
    watchdog and time-series sampler attached — and drives it over the
    same HTTP path, so both modes exercise identical plumbing.
    """
    from repro.service.driver import _Client
    from repro.workload.generator import GeneratorConfig, WorkloadGenerator

    emit = progress if progress is not None else (lambda line: None)
    service = server = None
    if url is None:
        from repro.obs.alerts import DEFAULT_RULES
        from repro.service import SchedulerService, ServiceServer
        from repro.topology.builders import cluster

        topo = (topo_factory or (lambda: cluster(5)))()
        service = SchedulerService(
            topo,
            scheduler,
            store_path=":memory:",
            watchdog_rules=rules if rules is not None else DEFAULT_RULES,
        ).start()
        server = ServiceServer(service, port=0).start()
        url = server.url
        emit(f"soak: started in-process daemon ({scheduler}) at {url}")

    client = _Client(url)
    result = SoakResult(
        scheduler=scheduler,
        url=url,
        minutes=minutes,
        window_s=window_s,
        jobs_per_burst=jobs_per_burst,
        burst_every_s=burst_every_s,
        seed=seed,
    )
    cfg = GeneratorConfig(arrival_rate_per_min=arrival_rate)
    try:
        result.watchdog_enabled = bool(
            _get(client, "/alerts").get("enabled", False)
        )
        start = time.monotonic()
        deadline = start + minutes * 60.0
        next_burst = start
        next_window = start + window_s
        fired_before = int(
            _get(client, "/alerts").get("fired_total", 0)
        )
        while True:
            now = time.monotonic()
            if now >= deadline:
                break
            if now >= next_burst:
                burst = result.bursts
                jobs = WorkloadGenerator(
                    cfg, seed=seed + burst
                ).generate(jobs_per_burst, id_prefix=f"soak{burst}-job")
                from repro.workload.manifest import job_to_dict

                for job in jobs:
                    status, _doc = client.request(
                        "POST", "/submit", job_to_dict(job)
                    )
                    if status == 202:
                        result.submitted += 1
                    else:
                        result.rejected += 1
                result.bursts += 1
                next_burst += burst_every_s
            if now >= next_window:
                window = _close_window(
                    client,
                    len(result.windows),
                    now - start,
                    result.submitted,
                    fired_before,
                )
                fired_before = window.alerts_fired_total
                result.windows.append(window)
                emit(
                    f"soak: window {window.index} t={window.t_s:.1f}s "
                    f"queue={window.queue_depth} "
                    f"running={window.running_jobs} "
                    f"util={window.utilization:.2f} "
                    f"verdict={window.verdict}"
                )
                next_window += window_s
            time.sleep(
                min(0.05, max(0.0, min(next_burst, next_window) - now))
            )
        # terminal window: whatever ran since the last close
        window = _close_window(
            client,
            len(result.windows),
            time.monotonic() - start,
            result.submitted,
            fired_before,
        )
        result.windows.append(window)
        emit(
            f"soak: window {window.index} t={window.t_s:.1f}s "
            f"queue={window.queue_depth} running={window.running_jobs} "
            f"util={window.utilization:.2f} verdict={window.verdict}"
        )
        ts_doc = _get(client, "/timeseries")
        result.timeseries_samples = int(ts_doc.get("samples", 0))
        result.timeseries_machines = len(ts_doc.get("machines", {}))
        result.alerts_fired_total = window.alerts_fired_total
        result.verdict = (
            "clean"
            if all(w.verdict == "clean" for w in result.windows)
            else "violations"
        )
        return result
    finally:
        client.close()
        if server is not None:
            server.stop()
        if service is not None:
            service.stop()


def write_soak(result: SoakResult, path: Path) -> Path:
    """Write the ``SOAK_*.json`` artifact (directories get a default
    file name)."""
    path = Path(path)
    if path.is_dir():
        path = path / f"SOAK_{result.scheduler.replace('-', '_')}.json"
    path.write_text(json.dumps(result.as_dict(), indent=2) + "\n")
    return path


def format_soak(result: SoakResult) -> str:
    """One human-readable summary block for the CLI."""
    lines = [
        f"soak: {result.minutes:g} min against {result.url} "
        f"({result.scheduler})",
        f"  bursts {result.bursts}  submitted {result.submitted}  "
        f"rejected {result.rejected}",
        f"  windows {len(result.windows)}  "
        f"alerts fired {result.alerts_fired_total}  "
        f"watchdog {'on' if result.watchdog_enabled else 'OFF'}",
        f"  timeseries samples {result.timeseries_samples} across "
        f"{result.timeseries_machines} machines",
    ]
    for w in result.windows:
        flag = "" if w.verdict == "clean" else "  <-- " + ",".join(
            w.alerts_active
        )
        lines.append(
            f"  window {w.index:>3}  t={w.t_s:7.1f}s  "
            f"queue={w.queue_depth:<5d} running={w.running_jobs:<4d} "
            f"util={w.utilization:4.2f}  {w.verdict}{flag}"
        )
    lines.append(f"  verdict: {result.verdict}")
    return "\n".join(lines)


__all__ = [
    "SOAK_SCHEMA_VERSION",
    "SoakResult",
    "SoakWindow",
    "format_soak",
    "run_soak",
    "write_soak",
]
