"""Text-table formatting of the figure data (benchmark/report output)."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.sim.engine import SimulationResult
from repro.sim.metrics import summarize
from repro.workload.job import BatchClass, ModelType


def format_speedup_table(data: Mapping[str, list[float]]) -> str:
    """Figure 4 / Section 3.2 style: rows = models, cols = batch sizes."""
    batches = data["batch_sizes"]
    header = "model      " + "".join(f"{b:>8}" for b in batches)
    lines = [header]
    for key, values in data.items():
        if key == "batch_sizes":
            continue
        lines.append(f"{key:<11}" + "".join(f"{v:>8.3f}" for v in values))
    return "\n".join(lines)


def format_breakdown_table(data: Mapping) -> str:
    """Figure 3 style: compute/comm percentages per configuration."""
    lines = [f"{'model':<11}{'batch':<8}{'strategy':<9}{'comm%':>7}{'comp_s':>9}{'comm_s':>9}"]
    for model in ModelType:
        for batch_class in BatchClass:
            for strategy in ("pack", "spread"):
                row = data[(model.value, batch_class.name.lower(), strategy)]
                lines.append(
                    f"{model.value:<11}{batch_class.name.lower():<8}{strategy:<9}"
                    f"{row['comm_fraction'] * 100:>6.1f}%"
                    f"{row['compute_s']:>9.2f}{row['comm_s']:>9.2f}"
                )
    return "\n".join(lines)


def format_collocation_table(data: Mapping[tuple[str, str], float]) -> str:
    """Figure 6 style: 4x4 slowdown matrix over batch classes."""
    classes = [c.name.lower() for c in BatchClass]
    corner = "job1/job2"
    header = f"{corner:<10}" + "".join(f"{c:>9}" for c in classes)
    lines = [header]
    for first in classes:
        cells = "".join(f"{data[(first, second)]:>9.3f}" for second in classes)
        lines.append(f"{first:<10}{cells}")
    return "\n".join(lines)


def format_scenario_table(results: Sequence[SimulationResult]) -> str:
    """Figures 8-11 summary: one row per scheduler."""
    from repro.sim.metrics import comparison_table

    return comparison_table(results)


def format_timeline(result: SimulationResult) -> str:
    """Figure 8(a)-(d) style placement timeline, textual."""
    lines = [f"[{result.scheduler_name}]"]
    for rec in result.records:
        if rec.placed_at is None:
            lines.append(f"  {rec.job.job_id}: never placed")
            continue
        gpu_ids = ",".join(g.split("gpu")[-1] for g in rec.gpus)
        end = f"{rec.finished_at:7.1f}" if rec.finished_at is not None else "    ..."
        lines.append(
            f"  {rec.job.job_id}: gpus[{gpu_ids}] "
            f"{rec.placed_at:7.1f}s -> {end}s"
            f"  U={rec.utility:.2f} p2p={'Y' if rec.p2p else 'n'}"
        )
    return "\n".join(lines)
