"""Kubernetes pod-spec generation from placement decisions.

Produces plain dicts matching the v1 Pod schema: GPU counts via the
``nvidia.com/gpu`` resource limit, machine pinning via
``nodeSelector`` on the kubernetes hostname label, the concrete device
list via ``CUDA_VISIBLE_DEVICES`` (plus ``CUDA_DEVICE_ORDER``, exactly
like the prototype's enforcement layer), and the scheduler's reasoning
recorded as annotations so operators can audit why a pod landed where
it did.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.placement import PlacementSolution
from repro.prototype.enforcement import launch_environment
from repro.topology.graph import TopologyGraph
from repro.workload.job import Job

_ANNOTATION_PREFIX = "gpu-topo-aware.scheduling"


def to_pod_spec(
    topo: TopologyGraph,
    job: Job,
    solution: PlacementSolution,
    image: str = "bvlc/caffe:gpu",
) -> dict:
    """One v1 Pod dict binding the job to its chosen GPUs."""
    if solution.job_id != job.job_id:
        raise ValueError(
            f"solution is for {solution.job_id!r}, not {job.job_id!r}"
        )
    machines = sorted({topo.machine_of(g) for g in solution.gpus})
    if len(machines) != 1:
        raise ValueError(
            "a pod binds to one node; split multi-machine placements "
            "into one pod per machine first"
        )
    env = launch_environment(topo, list(solution.gpus))
    return {
        "apiVersion": "v1",
        "kind": "Pod",
        "metadata": {
            "name": job.job_id,
            "labels": {
                f"{_ANNOTATION_PREFIX}/model": job.model.value,
                f"{_ANNOTATION_PREFIX}/batch-class": str(job.batch_class),
            },
            "annotations": {
                f"{_ANNOTATION_PREFIX}/utility": f"{solution.utility:.4f}",
                f"{_ANNOTATION_PREFIX}/p2p": str(solution.p2p).lower(),
                f"{_ANNOTATION_PREFIX}/gpus": ",".join(solution.gpus),
                f"{_ANNOTATION_PREFIX}/comm-cost": (
                    f"{solution.metrics.comm_cost:.2f}"
                ),
                f"{_ANNOTATION_PREFIX}/interference": (
                    f"{solution.metrics.interference:.4f}"
                ),
            },
        },
        "spec": {
            "restartPolicy": "Never",
            "nodeSelector": {"kubernetes.io/hostname": machines[0]},
            "containers": [
                {
                    "name": "trainer",
                    "image": image,
                    "command": [
                        "caffe",
                        "train",
                        f"--solver=solvers/{job.model.value}_b{job.batch_size}.prototxt",
                        f"--gpu={env['CUDA_VISIBLE_DEVICES']}",
                    ],
                    "env": [
                        {"name": k, "value": v} for k, v in sorted(env.items())
                    ],
                    "resources": {
                        "limits": {"nvidia.com/gpu": job.num_gpus},
                        "requests": {"nvidia.com/gpu": job.num_gpus},
                    },
                }
            ],
        },
    }


def to_pod_specs(
    topo: TopologyGraph,
    placements: Mapping[str, tuple[Job, PlacementSolution]],
) -> list[dict]:
    """Pod specs for a batch of placements, sorted by job id."""
    return [
        to_pod_spec(topo, job, solution)
        for _, (job, solution) in sorted(placements.items())
    ]
