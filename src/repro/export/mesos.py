"""Mesos TaskInfo generation from placement decisions.

Mirrors the Kubernetes adapter for the other cluster manager the paper
names: a TaskInfo-shaped dict with GPU resources, the agent (machine)
the offer must come from, and the prototype's enforcement environment.
"""

from __future__ import annotations

from repro.core.placement import PlacementSolution
from repro.prototype.enforcement import launch_command
from repro.topology.graph import TopologyGraph
from repro.workload.job import Job


def to_mesos_task(
    topo: TopologyGraph,
    job: Job,
    solution: PlacementSolution,
) -> dict:
    """A Mesos TaskInfo dict binding the job to its chosen GPUs."""
    if solution.job_id != job.job_id:
        raise ValueError(
            f"solution is for {solution.job_id!r}, not {job.job_id!r}"
        )
    machines = sorted({topo.machine_of(g) for g in solution.gpus})
    if len(machines) != 1:
        raise ValueError("a Mesos task binds to one agent")
    return {
        "name": job.job_id,
        "task_id": {"value": job.job_id},
        "agent_hostname": machines[0],
        "resources": [
            {
                "name": "gpus",
                "type": "SCALAR",
                "scalar": {"value": float(job.num_gpus)},
            }
        ],
        "command": {
            "shell": True,
            "value": launch_command(topo, job, solution.gpus),
        },
        "labels": {
            "labels": [
                {"key": "utility", "value": f"{solution.utility:.4f}"},
                {"key": "p2p", "value": str(solution.p2p).lower()},
                {"key": "gpus", "value": ",".join(solution.gpus)},
            ]
        },
    }
