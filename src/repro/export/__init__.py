"""Exports of placement decisions to cluster-manager formats.

The paper's future work: "we plan to ... test the implementation of our
algorithm in popular resource management systems such as Kubernetes and
Mesos."  These adapters translate a scored
:class:`~repro.core.placement.PlacementSolution` into the objects those
systems consume.
"""

from repro.export.kubernetes import to_pod_spec, to_pod_specs
from repro.export.mesos import to_mesos_task

__all__ = ["to_mesos_task", "to_pod_spec", "to_pod_specs"]
