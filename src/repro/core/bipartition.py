"""Physical-graph bipartitioning (Algorithm 2's ``physicalGraphBiPartition``).

Splitting a set of candidate GPUs into two topologically coherent
halves proceeds in two steps:

1. **Hierarchy-guided split**: find the highest hierarchy level at
   which the GPU set spans more than one component (machine, then
   socket, then switch) and distribute whole components greedily over
   the two sides (largest first, onto the emptier side).  Components
   are atomic: a structural boundary is always the right cut for
   region mapping, whereas a pure min-cut would prefer peeling single
   GPUs off (optimal cut weight, useless recursion shape).
2. **FM fallback**: when the set lies entirely inside one lowest-level
   component (an NVLink clique or a flat mesh region), run
   Fiduccia-Mattheyses on the inverse-distance affinity graph to cut
   along the weakest connections.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.fm import FMResult, fm_bipartition
from repro.topology.graph import NodeKind, TopologyGraph


def _grouping(topo: TopologyGraph, gpus: Sequence[str]) -> list[list[str]] | None:
    """Group GPUs by the highest hierarchy level that separates them."""
    for keyer in (topo.machine_of, topo.socket_of, _switch_of_factory(topo)):
        groups: dict[str, list[str]] = {}
        for g in gpus:
            groups.setdefault(keyer(g), []).append(g)
        if len(groups) > 1:
            return [groups[k] for k in sorted(groups)]
    return None


def _switch_of_factory(topo: TopologyGraph):
    def switch_of(gpu: str) -> str:
        for nbr in topo.neighbors(gpu):
            if topo.node(nbr).kind is NodeKind.SWITCH:
                return nbr
        return topo.socket_of(gpu)  # no switch level on this machine

    return switch_of


def _seed_from_groups(groups: list[list[str]]) -> tuple[list[str], list[str]]:
    """Distribute whole groups over two sides, largest first."""
    sides: tuple[list[str], list[str]] = ([], [])
    for group in sorted(groups, key=lambda g: (-len(g), g)):
        target = 0 if len(sides[0]) <= len(sides[1]) else 1
        sides[target].extend(group)
    return sides


def gpu_affinity(
    topo: TopologyGraph, gpus: Sequence[str]
) -> dict[str, dict[str, float]]:
    """Inverse-distance affinity between candidate GPUs."""
    aff: dict[str, dict[str, float]] = {g: {} for g in gpus}
    ordered = list(gpus)
    for i, u in enumerate(ordered):
        for v in ordered[i + 1 :]:
            w = 1.0 / topo.distance(u, v)
            aff[u][v] = w
            aff[v][u] = w
    return aff


def physical_bipartition(
    topo: TopologyGraph, gpus: Sequence[str]
) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """Split candidate GPUs into two coherent halves (P0, P1).

    P0/P1 ordering is deterministic.  Requires at least two GPUs.
    """
    gpus = sorted(gpus)
    if len(gpus) < 2:
        raise ValueError("need at least two GPUs to bipartition")
    if len(gpus) == 2:
        return (gpus[0],), (gpus[1],)

    groups = _grouping(topo, gpus)
    if groups is not None:
        # The hierarchy boundary (machine/socket/switch) *is* the
        # correct cut for placement: components are atomic regions and
        # should never be split while a structural boundary exists.
        # (Pure min-cut would prefer peeling single GPUs off -- optimal
        # for cut weight, useless for recursive region mapping.)
        side0, side1 = _seed_from_groups(groups)
        a, b = sorted((tuple(sorted(side0)), tuple(sorted(side1))))
        return a, b
    aff = gpu_affinity(topo, gpus)
    result: FMResult = fm_bipartition(gpus, aff, validate=False)
    side0, side1 = sorted((tuple(sorted(result.side0)), tuple(sorted(result.side1))))
    return side0, side1
