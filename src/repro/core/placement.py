"""The end-to-end placement function psi(A, P) (paper Section 4.4).

:class:`PlacementEngine` glues the pieces together: filter hosts,
normalise the job graph by the machine bandwidth, run DRB on every
candidate pool, score each mapping with the utility function and
return the best :class:`PlacementSolution`.  The scheduler policies
(:mod:`repro.schedulers`) then decide whether to enforce or postpone
the proposed solution.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Mapping

from repro.core.constraints import (
    CandidatePool,
    CandidatePrefilter,
    PrefilterStats,
    filter_hosts,
)
from repro.core.drb import BipartitionCache, drb_map
from repro.core.utility import (
    SLO_EPS,
    SolutionMetrics,
    UtilityParams,
    evaluate_solution,
)
from repro.perf.interference import InterferenceModel
from repro.topology.allocation import AllocationState
from repro.topology.graph import TopologyGraph
from repro.workload.job import Job
from repro.workload.jobgraph import JobGraph, job_graph_for
from repro.workload.profiles import ProfileDatabase, default_database


@dataclass(frozen=True)
class PlacementSolution:
    """A scored GPU allocation for one job."""

    job_id: str
    gpus: tuple[str, ...]
    task_mapping: Mapping[int, str]
    metrics: SolutionMetrics
    pool: CandidatePool
    p2p: bool  # every GPU pair of the allocation can exchange P2P

    @property
    def utility(self) -> float:
        """Normalised utility in [0, 1] (checked against the job SLO)."""
        return self.metrics.utility

    def satisfies(self, job: Job) -> bool:
        """SLO check used by TOPO-AWARE-P: utility above the job's
        threshold, and P2P available when the job requires it."""
        if self.utility < job.min_utility - SLO_EPS:
            return False
        if job.requires_p2p and not self.p2p:
            return False
        return True


@dataclass
class PlacementStats:
    """Placement-memo effectiveness counters (exported via ``obs``).

    ``invalidations`` counts allocation-epoch rotations observed
    between lookups — proposals that could not reuse the previous
    lookup's pool state (entries themselves are keyed on pool identity
    and survive rotations until the LRU evicts them).
    """

    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }


#: distinguishes "memoised None (no fit)" from "not memoised"
_MISS = object()


class PlacementEngine:
    """Computes topology-aware placements over a live allocation state.

    ``memo_size`` bounds the propose memo: solved proposals (including
    no-fit ``None`` results) are reused for equivalent jobs.  Every
    input :meth:`propose` reads is part of the memo key — the job's
    placement-equivalence fields, the *identity-precise* free pool
    (:meth:`AllocationState.free_pool_key`: exact free GPU ids plus
    machine health) and the co-runner allocations in iteration order —
    so entries survive allocation epochs and are replayed only when
    the cluster has returned to a state in which the seed engine would
    recompute the identical answer.  Stale-pool entries age out of the
    LRU naturally.  ``0`` disables memoisation entirely.

    Two further fast paths, both bit-identical by construction (see
    DESIGN.md §9) and independently switchable for A/B verification:

    * ``incremental_drb`` keeps a :class:`BipartitionCache` synced to
      the allocation epoch, reusing physical splits and side metrics
      across proposals and patching only the subtrees whose machines
      changed between rounds;
    * ``prefilter`` draws host candidates from the allocator's
      capacity-bucket index and stops probing once :attr:`max_pools`
      machines survived every constraint, instead of scanning the whole
      fleet per proposal.
    """

    def __init__(
        self,
        topo: TopologyGraph,
        alloc: AllocationState,
        params: UtilityParams = UtilityParams(),
        profiles: ProfileDatabase | None = None,
        interference_model: InterferenceModel | None = None,
        memo_size: int = 512,
        *,
        incremental_drb: bool = True,
        prefilter: bool = True,
    ) -> None:
        self.topo = topo
        self.alloc = alloc
        self.params = params
        self.profiles = profiles or default_database()
        self.interference = interference_model or InterferenceModel(topo)
        self._reference_bw = self._max_pair_bandwidth()
        self.memo_size = memo_size
        self.stats = PlacementStats()
        self._memo: OrderedDict[tuple, PlacementSolution | None] = OrderedDict()
        self._memo_version = -1
        self.drb_cache = BipartitionCache(topo) if incremental_drb else None
        self.prefilter = (
            CandidatePrefilter(self.max_pools, PrefilterStats())
            if prefilter
            else None
        )

    def _max_pair_bandwidth(self) -> float:
        """Best GPU-pair bandwidth on the first machine (normalisation base)."""
        machine = self.topo.machines()[0]
        gpus = self.topo.gpus(machine=machine)
        best = 0.0
        for i, a in enumerate(gpus):
            for b in gpus[i + 1 :]:
                best = max(best, self.topo.bottleneck_bandwidth(a, b))
        return best or 1.0

    # ------------------------------------------------------------------
    def job_graph(self, job: Job) -> JobGraph:
        """The job's communication graph (by declared pattern),
        bandwidth-normalised as in Section 4.1.1."""
        return job_graph_for(job).normalised(self._reference_bw / 10.0)

    #: how many candidate pools get a full DRB evaluation per proposal;
    #: pools are pre-sorted tightest-fit first, so a handful suffices
    #: while keeping large-cluster scheduling tractable.
    max_pools: int = 8

    def _memo_key(
        self, job: Job, co_runners: Mapping[str, tuple[Job, frozenset[str]]]
    ) -> tuple:
        """Equivalence class of a proposal.

        Two proposals with equal keys are guaranteed the same answer:
        every job field :meth:`propose` reads is included (``job_id``,
        ``iterations``, ``min_utility``, ``arrival_time`` and ``tags``
        are provably unread there), the identity-precise pool key pins
        exactly which GPUs are on offer, and the co-runner component
        pins the interference neighbourhood — (id, gpus) pairs *in
        iteration order*, because interference sums are floating-point
        accumulations whose bit pattern depends on visit order, and a
        job id names one immutable Job for the lifetime of a run.
        """
        return (
            job.model,
            job.batch_size,
            job.num_gpus,
            job.comm_pattern,
            job.anti_collocation,
            job.single_node,
            job.p2p,
            self.alloc.free_pool_key(),
            tuple((job_id, gpus) for job_id, (_, gpus) in co_runners.items()),
        )

    def propose(
        self,
        job: Job,
        co_runners: Mapping[str, tuple[Job, frozenset[str]]] | None = None,
        provenance: dict | None = None,
    ) -> PlacementSolution | None:
        """Best placement currently available, or ``None`` if none fits.

        Memoised per allocation epoch (see class docstring); a hit
        returns the cached solution re-labelled with this job's id.

        ``provenance`` (optional) is a decision-provenance out-param:
        when a dict is passed it is filled with memo hit/miss state,
        the candidate-pool report and the per-pool evaluation results.
        On a memo hit the pool report is recomputed via a read-only
        ``filter_hosts`` pass (the cached answer skipped it), so every
        decision record carries its candidate-pool sizes; the extra
        pass only runs when provenance is requested and mutates
        nothing, keeping results bit-identical.
        """
        co_runners = co_runners or {}
        if self.memo_size <= 0:
            if provenance is not None:
                provenance["memo"] = {"enabled": False, "hit": False}
            return self._propose(job, co_runners, provenance)
        version = self.alloc.version
        if version != self._memo_version:
            # the pool moved since the last lookup: count an epoch
            # rotation (existing entries keep their identity keys and
            # stay replayable should the pool return to that state)
            if self._memo:
                self.stats.invalidations += 1
            self._memo_version = version
        key = self._memo_key(job, co_runners)
        cached = self._memo.get(key, _MISS)
        if cached is not _MISS:
            self._memo.move_to_end(key)
            self.stats.hits += 1
            if provenance is not None:
                provenance["memo"] = {"enabled": True, "hit": True}
                report: dict = {}
                filter_hosts(
                    self.topo, self.alloc, job, co_runners, self.profiles,
                    report=report,
                    # stats-less clone: the re-report is a pure tap and
                    # must not perturb the engine's prefilter counters
                    prefilter=(
                        None if self.prefilter is None
                        else self.prefilter.readonly()
                    ),
                )
                provenance["pools"] = report
            if cached is None:
                return None
            return replace(cached, job_id=job.job_id)
        self.stats.misses += 1
        if provenance is not None:
            provenance["memo"] = {"enabled": True, "hit": False}
        solution = self._propose(job, co_runners, provenance)
        self._memo[key] = solution
        if len(self._memo) > self.memo_size:
            self._memo.popitem(last=False)
        return solution

    def _propose(
        self,
        job: Job,
        co_runners: Mapping[str, tuple[Job, frozenset[str]]],
        provenance: dict | None = None,
    ) -> PlacementSolution | None:
        if self.drb_cache is not None:
            self.drb_cache.sync(self.alloc)
        if self.prefilter is not None:
            # k tracks the engine's pool budget: probing may stop only
            # once the budget the loop below consumes is full
            self.prefilter.top_k = self.max_pools
        report = {} if provenance is not None else None
        pools = filter_hosts(
            self.topo, self.alloc, job, co_runners, self.profiles,
            report=report,
            prefilter=self.prefilter,
        )
        if provenance is not None:
            provenance["pools"] = report
        if not pools:
            if provenance is not None:
                provenance["reason"] = "no-feasible-pool"
            return None
        jobgraph = self.job_graph(job)
        best: PlacementSolution | None = None
        candidates = [] if provenance is not None else None
        for pool in pools[: self.max_pools]:
            solution = self._solve_pool(job, jobgraph, pool, co_runners)
            if candidates is not None:
                candidates.append({
                    "machines": list(pool.machines),
                    "pool_gpus": len(pool.gpus),
                    "utility": None if solution is None else solution.utility,
                    "p2p": None if solution is None else solution.p2p,
                })
            if solution is None:
                continue
            if best is None or solution.utility > best.utility + 1e-12:
                best = solution
            if best.utility >= 1.0 - 1e-12:
                break  # cannot improve on a perfect placement
        if provenance is not None:
            provenance["candidates"] = candidates
            if best is None:
                provenance["reason"] = "no-mapping"
        return best

    def _solve_pool(
        self,
        job: Job,
        jobgraph: JobGraph,
        pool: CandidatePool,
        co_runners: Mapping[str, tuple[Job, frozenset[str]]],
    ) -> PlacementSolution | None:
        if job.anti_collocation:
            mapping = self._anti_collocation_mapping(job, pool)
            if mapping is None:
                return None
        else:
            try:
                mapping = drb_map(
                    self.topo,
                    self.alloc,
                    job,
                    jobgraph,
                    pool.gpus,
                    co_runners,
                    self.params,
                    self.interference,
                    cache=self.drb_cache,
                )
            except ValueError:
                return None
        gpus = tuple(sorted(mapping.values()))
        p2p = all(
            self.topo.p2p_connected(a, b)
            for i, a in enumerate(gpus)
            for b in gpus[i + 1 :]
        )
        metrics = evaluate_solution(
            self.topo,
            self.alloc,
            job,
            gpus,
            co_runners,
            self.params,
            self.interference,
            cache=self.drb_cache,
        )
        return PlacementSolution(
            job_id=job.job_id,
            gpus=gpus,
            task_mapping=dict(mapping),
            metrics=metrics,
            pool=pool,
            p2p=p2p,
        )

    def _anti_collocation_mapping(
        self, job: Job, pool: CandidatePool
    ) -> dict[int, str] | None:
        """Round-robin tasks over distinct domains (sockets/machines)."""
        domain_of = (
            self.topo.machine_of if pool.spans_machines else self.topo.socket_of
        )
        by_domain: dict[str, list[str]] = {}
        for g in pool.gpus:
            by_domain.setdefault(domain_of(g), []).append(g)
        domains = sorted(by_domain)
        if len(domains) < job.num_gpus:
            return None
        return {
            task: by_domain[domains[task]][0] for task in range(job.num_gpus)
        }

    # ------------------------------------------------------------------
    def score_allocation(
        self,
        job: Job,
        gpus: tuple[str, ...],
        co_runners: Mapping[str, tuple[Job, frozenset[str]]] | None = None,
    ) -> PlacementSolution:
        """Score an externally chosen allocation (used by the greedy
        baselines so their decisions carry the same metrics)."""
        co_runners = co_runners or {}
        gpus = tuple(sorted(gpus))
        machines = tuple(sorted({self.topo.machine_of(g) for g in gpus}))
        p2p = all(
            self.topo.p2p_connected(a, b)
            for i, a in enumerate(gpus)
            for b in gpus[i + 1 :]
        )
        metrics = evaluate_solution(
            self.topo,
            self.alloc,
            job,
            gpus,
            co_runners,
            self.params,
            self.interference,
        )
        return PlacementSolution(
            job_id=job.job_id,
            gpus=gpus,
            task_mapping={i: g for i, g in enumerate(gpus)},
            metrics=metrics,
            pool=CandidatePool(machines=machines, gpus=gpus),
            p2p=p2p,
        )

    def explain(
        self,
        job: Job,
        co_runners: Mapping[str, tuple[Job, frozenset[str]]] | None = None,
    ) -> list[PlacementSolution]:
        """All candidate solutions the engine considered, best first.

        Operator-facing: shows *why* a placement won -- every evaluated
        pool's mapping with its utility, communication cost,
        interference and P2P capability.  The first element (if any) is
        exactly what :meth:`propose` would return.
        """
        co_runners = co_runners or {}
        if self.drb_cache is not None:
            self.drb_cache.sync(self.alloc)
        pools = filter_hosts(
            self.topo, self.alloc, job, co_runners, self.profiles,
            # operator-facing inspection is a tap: same pruning, but it
            # must not count into the engine's prefilter statistics
            prefilter=(
                None if self.prefilter is None else self.prefilter.readonly()
            ),
        )
        jobgraph = self.job_graph(job)
        candidates = []
        for pool in pools[: self.max_pools]:
            solution = self._solve_pool(job, jobgraph, pool, co_runners)
            if solution is not None:
                candidates.append(solution)
        candidates.sort(key=lambda s: -s.utility)
        return candidates

    def drb_stats(self) -> dict:
        """Incremental-DRB reuse counters ({} when the path is off)."""
        return {} if self.drb_cache is None else self.drb_cache.stats.as_dict()

    def prefilter_stats(self) -> dict:
        """Prefilter hit counters ({} when the path is off)."""
        if self.prefilter is None or self.prefilter.stats is None:
            return {}
        return self.prefilter.stats.as_dict()

    def p2p_attainable(self, job: Job) -> bool:
        """Whether any allocation on this hardware could give the job
        all-pairs P2P (ignoring current occupancy).  TOPO-AWARE-P must
        not postpone forever chasing an impossible allocation."""
        if not job.requires_p2p:
            return True
        sizes = self.topo.p2p_island_sizes()
        return bool(sizes) and sizes[0] >= job.num_gpus

    def enforce(self, solution: PlacementSolution) -> None:
        """Commit a proposed placement to the allocation state."""
        self.alloc.allocate(solution.job_id, solution.gpus)
