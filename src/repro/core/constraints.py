"""Host filtering (Algorithm 1's ``filterHostsByConstraints``).

Candidate pools are built per machine and must satisfy the paper's
inequality constraints: enough free GPUs (``t_gpu <= p_gpu``) and
enough residual bus bandwidth (``t_bw <= p_bw``).  Jobs are packed on a
single node unless ``single_node=False``, in which case a spanning pool
over the least-loaded machines is offered when no single machine fits.
Anti-collocation jobs additionally need as many distinct free domains
(sockets, or machines when spanning) as tasks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.topology.allocation import AllocationState
from repro.topology.graph import TopologyGraph
from repro.workload.job import Job
from repro.workload.profiles import ProfileDatabase, default_database


@dataclass(frozen=True)
class CandidatePool:
    """A set of free GPUs a job may be mapped onto."""

    machines: tuple[str, ...]
    gpus: tuple[str, ...]

    @property
    def spans_machines(self) -> bool:
        return len(self.machines) > 1


_CAPACITY_CACHE: dict[int, dict[str, float]] = {}


def machine_bus_capacity(topo: TopologyGraph, machine: str) -> float:
    """Aggregate GPU-uplink bandwidth of a machine (the ``p_bw`` bound).

    Cached per topology instance -- it is consulted for every machine on
    every scheduling round.
    """
    per_topo = _CAPACITY_CACHE.setdefault(id(topo), {})
    cached = per_topo.get(machine)
    if cached is not None:
        return cached
    total = 0.0
    for g in topo.gpus(machine=machine):
        best = 0.0
        for nbr in topo.neighbors(g):
            edge = topo.edge(g, nbr)
            if topo.node(nbr).kind is not topo.node(g).kind:  # uplink, not peer
                best = max(best, edge.spec.bandwidth_gbs)
        total += best
    per_topo[machine] = total
    return total


def _machine_demand(
    alloc: AllocationState,
    machine: str,
    co_runners: Mapping[str, tuple[Job, frozenset[str]]],
    profiles: ProfileDatabase,
) -> float:
    """Average bus demand of the jobs currently running on a machine."""
    demand = 0.0
    for job_id in alloc.jobs_on_machine(machine):
        entry = co_runners.get(job_id)
        if entry is not None:
            demand += profiles.for_job(entry[0]).avg_demand_gbs
    return demand


def _free_domains(topo: TopologyGraph, free: list[str]) -> int:
    return len({topo.socket_of(g) for g in free})


def filter_hosts(
    topo: TopologyGraph,
    alloc: AllocationState,
    job: Job,
    co_runners: Mapping[str, tuple[Job, frozenset[str]]] | None = None,
    profiles: ProfileDatabase | None = None,
    *,
    spanning_pool_factor: int = 4,
    report: dict | None = None,
) -> list[CandidatePool]:
    """Candidate pools for ``job``, best-provisioned machines first.

    Returns an empty list when the job cannot currently be placed
    anywhere (the scheduler then re-queues it).

    ``report`` (optional) is a provenance out-param: when a dict is
    passed, it is filled with machine counts, per-constraint prune
    tallies and the surviving pool sizes.  Pure bookkeeping on values
    the filter computes anyway — passing it changes no result.
    """
    co_runners = co_runners or {}
    profiles = profiles or default_database()
    job_demand = profiles.for_job(job).avg_demand_gbs
    if report is not None:
        report.update(
            machines=len(topo.machines()),
            eligible=0,
            pruned={"free-gpus": 0, "bus-bandwidth": 0, "anti-collocation": 0},
            pool_sizes=[],
            spanning=False,
        )

    eligible: list[tuple[int, str]] = []
    for machine in topo.machines():
        n_free = alloc.free_count(machine)  # O(1) quick reject
        if n_free < job.num_gpus:
            if report is not None:
                report["pruned"]["free-gpus"] += 1
            continue
        capacity = machine_bus_capacity(topo, machine)
        used = _machine_demand(alloc, machine, co_runners, profiles)
        if used + job_demand > capacity:
            if report is not None:
                report["pruned"]["bus-bandwidth"] += 1
            continue
        eligible.append((n_free, machine))

    # tightest sufficient machines first (the omega_d consolidation
    # preference: fill fragmented domains before opening fresh ones);
    # utility comparison across pools still picks the best placement.
    eligible.sort(key=lambda item: (item[0], item[1]))
    pools = []
    for _, machine in eligible:
        free = alloc.free_gpus(machine=machine)
        if job.anti_collocation and _free_domains(topo, free) < job.num_gpus:
            if report is not None:
                report["pruned"]["anti-collocation"] += 1
            continue
        pools.append(CandidatePool(machines=(machine,), gpus=tuple(free)))
    if pools or job.single_node:
        if report is not None:
            report["eligible"] = len(pools)
            report["pool_sizes"] = [len(p.gpus) for p in pools]
        return pools

    # multi-node spanning pool: least-loaded machines until the pool is
    # comfortably larger than the job (bounded to keep DRB cheap).
    ranked = sorted(
        ((alloc.free_count(m), m) for m in topo.machines()),
        key=lambda item: (-item[0], item[1]),
    )
    gpus: list[str] = []
    machines: list[str] = []
    target = job.num_gpus * spanning_pool_factor
    for count, machine in ranked:
        if count == 0:
            continue
        machines.append(machine)
        gpus.extend(alloc.free_gpus(machine=machine))
        if len(gpus) >= target:
            break
    if len(gpus) < job.num_gpus:
        return []
    if job.anti_collocation and len(machines) < job.num_gpus:
        return []
    if report is not None:
        report["eligible"] = 1
        report["pool_sizes"] = [len(gpus)]
        report["spanning"] = True
    return [CandidatePool(machines=tuple(machines), gpus=tuple(gpus))]
