"""Host filtering (Algorithm 1's ``filterHostsByConstraints``).

Candidate pools are built per machine and must satisfy the paper's
inequality constraints: enough free GPUs (``t_gpu <= p_gpu``) and
enough residual bus bandwidth (``t_bw <= p_bw``).  Jobs are packed on a
single node unless ``single_node=False``, in which case a spanning pool
over the least-loaded machines is offered when no single machine fits.
Anti-collocation jobs additionally need as many distinct free domains
(sockets, or machines when spanning) as tasks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.topology.allocation import AllocationState
from repro.topology.graph import TopologyGraph
from repro.workload.job import Job
from repro.workload.profiles import ProfileDatabase, default_database


@dataclass(frozen=True)
class CandidatePool:
    """A set of free GPUs a job may be mapped onto."""

    machines: tuple[str, ...]
    gpus: tuple[str, ...]

    @property
    def spans_machines(self) -> bool:
        return len(self.machines) > 1


@dataclass
class PrefilterStats:
    """What the top-k candidate prefilter did across an engine's life."""

    calls: int = 0
    considered: int = 0
    pruned: int = 0

    def as_dict(self) -> dict:
        total = self.considered + self.pruned
        return {
            "calls": self.calls,
            "considered": self.considered,
            "pruned": self.pruned,
            "prune_rate": (self.pruned / total) if total else 0.0,
        }


class CandidatePrefilter:
    """Top-k host prefilter configuration + accounting.

    ``top_k`` is the engine's candidate-pool budget: host filtering may
    stop probing as soon as that many machines survived every
    constraint, because the exhaustive scan orders survivors by
    (free count asc, name asc) and the engine only ever examines the
    first ``top_k`` pools — the capacity-dominance argument written up
    in DESIGN.md §9.  ``stats`` is optional so read-only re-reports
    (provenance on a memo hit) can run the same pruning without
    perturbing the engine's counters.
    """

    def __init__(self, top_k: int, stats: PrefilterStats | None = None) -> None:
        if top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {top_k}")
        self.top_k = top_k
        self.stats = stats

    def note(self, considered: int, pruned: int) -> None:
        if self.stats is not None:
            self.stats.calls += 1
            self.stats.considered += considered
            self.stats.pruned += pruned

    def readonly(self) -> "CandidatePrefilter":
        """A stats-less clone for tap-only (provenance) re-runs."""
        return CandidatePrefilter(self.top_k, None)


_CAPACITY_CACHE: dict[int, dict[str, float]] = {}


def machine_bus_capacity(topo: TopologyGraph, machine: str) -> float:
    """Aggregate GPU-uplink bandwidth of a machine (the ``p_bw`` bound).

    Cached per topology instance -- it is consulted for every machine on
    every scheduling round.
    """
    per_topo = _CAPACITY_CACHE.setdefault(id(topo), {})
    cached = per_topo.get(machine)
    if cached is not None:
        return cached
    total = 0.0
    for g in topo.gpus(machine=machine):
        best = 0.0
        for nbr in topo.neighbors(g):
            edge = topo.edge(g, nbr)
            if topo.node(nbr).kind is not topo.node(g).kind:  # uplink, not peer
                best = max(best, edge.spec.bandwidth_gbs)
        total += best
    per_topo[machine] = total
    return total


def _machine_demand(
    alloc: AllocationState,
    machine: str,
    co_runners: Mapping[str, tuple[Job, frozenset[str]]],
    profiles: ProfileDatabase,
) -> float:
    """Average bus demand of the jobs currently running on a machine."""
    demand = 0.0
    for job_id in alloc.jobs_on_machine(machine):
        entry = co_runners.get(job_id)
        if entry is not None:
            demand += profiles.for_job(entry[0]).avg_demand_gbs
    return demand


def _free_domains(topo: TopologyGraph, free: list[str]) -> int:
    return len({topo.socket_of(g) for g in free})


def filter_hosts(
    topo: TopologyGraph,
    alloc: AllocationState,
    job: Job,
    co_runners: Mapping[str, tuple[Job, frozenset[str]]] | None = None,
    profiles: ProfileDatabase | None = None,
    *,
    spanning_pool_factor: int = 4,
    report: dict | None = None,
    prefilter: CandidatePrefilter | None = None,
) -> list[CandidatePool]:
    """Candidate pools for ``job``, best-provisioned machines first.

    Returns an empty list when the job cannot currently be placed
    anywhere (the scheduler then re-queues it).

    ``report`` (optional) is a provenance out-param: when a dict is
    passed, it is filled with machine counts, per-constraint prune
    tallies and the surviving pool sizes.  Pure bookkeeping on values
    the filter computes anyway — passing it changes no result.

    ``prefilter`` (optional) switches to the top-k fast path: instead
    of scanning every machine, candidates are drawn from the
    allocator's capacity-bucket index in exactly the survivor order the
    exhaustive scan sorts into, and probing stops once ``top_k``
    machines survived every constraint.  Because the caller only ever
    consumes the first ``top_k`` pools, the returned prefix — and thus
    every placement — is identical; only the prune tallies of the
    never-probed tail differ (recorded under ``report["prefilter"]``).
    """
    co_runners = co_runners or {}
    profiles = profiles or default_database()
    job_demand = profiles.for_job(job).avg_demand_gbs
    if prefilter is not None:
        return _filter_hosts_prefiltered(
            topo,
            alloc,
            job,
            co_runners,
            profiles,
            job_demand,
            spanning_pool_factor,
            report,
            prefilter,
        )
    if report is not None:
        report.update(
            machines=len(topo.machines()),
            eligible=0,
            pruned={"free-gpus": 0, "bus-bandwidth": 0, "anti-collocation": 0},
            pool_sizes=[],
            spanning=False,
        )

    eligible: list[tuple[int, str]] = []
    for machine in topo.machines():
        n_free = alloc.free_count(machine)  # O(1) quick reject
        if n_free < job.num_gpus:
            if report is not None:
                report["pruned"]["free-gpus"] += 1
            continue
        capacity = machine_bus_capacity(topo, machine)
        used = _machine_demand(alloc, machine, co_runners, profiles)
        if used + job_demand > capacity:
            if report is not None:
                report["pruned"]["bus-bandwidth"] += 1
            continue
        eligible.append((n_free, machine))

    # tightest sufficient machines first (the omega_d consolidation
    # preference: fill fragmented domains before opening fresh ones);
    # utility comparison across pools still picks the best placement.
    eligible.sort(key=lambda item: (item[0], item[1]))
    pools = []
    for _, machine in eligible:
        free = alloc.free_gpus(machine=machine)
        if job.anti_collocation and _free_domains(topo, free) < job.num_gpus:
            if report is not None:
                report["pruned"]["anti-collocation"] += 1
            continue
        pools.append(CandidatePool(machines=(machine,), gpus=tuple(free)))
    if pools or job.single_node:
        if report is not None:
            report["eligible"] = len(pools)
            report["pool_sizes"] = [len(p.gpus) for p in pools]
        return pools

    # multi-node spanning pool: least-loaded machines until the pool is
    # comfortably larger than the job (bounded to keep DRB cheap).
    ranked = sorted(
        ((alloc.free_count(m), m) for m in topo.machines()),
        key=lambda item: (-item[0], item[1]),
    )
    gpus: list[str] = []
    machines: list[str] = []
    target = job.num_gpus * spanning_pool_factor
    for count, machine in ranked:
        if count == 0:
            continue
        machines.append(machine)
        gpus.extend(alloc.free_gpus(machine=machine))
        if len(gpus) >= target:
            break
    if len(gpus) < job.num_gpus:
        return []
    if job.anti_collocation and len(machines) < job.num_gpus:
        return []
    if report is not None:
        report["eligible"] = 1
        report["pool_sizes"] = [len(gpus)]
        report["spanning"] = True
    return [CandidatePool(machines=tuple(machines), gpus=tuple(gpus))]


def _filter_hosts_prefiltered(
    topo: TopologyGraph,
    alloc: AllocationState,
    job: Job,
    co_runners: Mapping[str, tuple[Job, frozenset[str]]],
    profiles: ProfileDatabase,
    job_demand: float,
    spanning_pool_factor: int,
    report: dict | None,
    prefilter: CandidatePrefilter,
) -> list[CandidatePool]:
    """Top-k fast path of :func:`filter_hosts`.

    Candidates come from the allocator's capacity-bucket index in
    (free count asc, name asc) order — the exact order the exhaustive
    scan sorts survivors into — so stopping after ``top_k`` survivors
    returns the same pool prefix the caller would have consumed anyway.
    The capacity reject (``free < num_gpus``) is implicit: the bucket
    iterator never yields those machines, and their prune tally comes
    from the index in O(distinct counts).
    """
    need = job.num_gpus
    total_machines = len(topo.machines())
    capacity_eligible = alloc.eligible_machine_count(need)
    below_capacity = total_machines - capacity_eligible
    if report is not None:
        report.update(
            machines=total_machines,
            eligible=0,
            pruned={
                "free-gpus": below_capacity,
                "bus-bandwidth": 0,
                "anti-collocation": 0,
                "prefilter": 0,
            },
            pool_sizes=[],
            spanning=False,
            prefilter={"k": prefilter.top_k, "considered": 0, "pruned": 0},
        )

    pools: list[CandidatePool] = []
    probed = 0
    for machine in alloc.candidate_machines(need):
        probed += 1
        capacity = machine_bus_capacity(topo, machine)
        used = _machine_demand(alloc, machine, co_runners, profiles)
        if used + job_demand > capacity:
            if report is not None:
                report["pruned"]["bus-bandwidth"] += 1
            continue
        free = alloc.free_gpus(machine=machine)
        if job.anti_collocation and _free_domains(topo, free) < need:
            if report is not None:
                report["pruned"]["anti-collocation"] += 1
            continue
        pools.append(CandidatePool(machines=(machine,), gpus=tuple(free)))
        if len(pools) >= prefilter.top_k:
            break
    skipped = capacity_eligible - probed
    prefilter.note(probed, skipped)
    if report is not None:
        report["prefilter"] = {
            "k": prefilter.top_k,
            "considered": probed,
            "pruned": skipped,
        }
        report["pruned"]["prefilter"] = skipped
    if pools or job.single_node:
        if report is not None:
            report["eligible"] = len(pools)
            report["pool_sizes"] = [len(p.gpus) for p in pools]
        return pools

    # multi-node spanning pool, fed by the bucket index most-free-first
    # (the exhaustive path's (-count, name) ranking) and stopping as
    # soon as the pool is comfortably larger than the job.
    gpus: list[str] = []
    machines: list[str] = []
    target = need * spanning_pool_factor
    for _count, machine in alloc.machines_by_free_desc():
        machines.append(machine)
        gpus.extend(alloc.free_gpus(machine=machine))
        if len(gpus) >= target:
            break
    if len(gpus) < need:
        return []
    if job.anti_collocation and len(machines) < need:
        return []
    if report is not None:
        report["eligible"] = 1
        report["pool_sizes"] = [len(gpus)]
        report["spanning"] = True
    return [CandidatePool(machines=tuple(machines), gpus=tuple(gpus))]
