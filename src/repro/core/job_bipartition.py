"""Utility-based job-graph bipartitioning (paper Algorithm 3).

Given the two physical sub-partitions ``P0``/``P1`` produced by
:func:`repro.core.bipartition.physical_bipartition`, every task of the
job graph is assigned to the side offering the higher utility (Eq. 2),
subject to capacity: a side can never receive more tasks than it has
GPUs.

Per-side utility components for a task ``k``:

* **communication cost**: the task's edge weights towards tasks already
  assigned in this invocation *and* towards tasks fixed by ancestor
  splits (the paper's ``C`` array), each scaled by the representative
  distance between the candidate side and the region holding the peer;
* **interference** (Eq. 4): how much the side's GPUs would suffer
  from / inflict on the jobs currently running near them;
* **fragmentation** (Eq. 5): how much free capacity the side's sockets
  would retain.

Tasks are processed in descending communication-degree order so the
heaviest communicators anchor the partition deterministically.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.utility import UtilityParams, fragmentation_after, raw_utility
from repro.topology.allocation import AllocationState
from repro.topology.graph import TopologyGraph
from repro.workload.job import Job
from repro.workload.jobgraph import JobGraph


@dataclass(frozen=True)
class ExternalRegion:
    """Tasks fixed to a GPU region by an ancestor split (the C array)."""

    tasks: tuple[int, ...]
    gpus: tuple[str, ...]


def _mean_distance(
    topo: TopologyGraph, a: Sequence[str], b: Sequence[str]
) -> float:
    """Representative distance between two GPU regions.

    For distinct regions: mean over cross pairs.  For a region against
    itself: mean over internal pairs (0 when it has a single GPU).
    """
    if not a or not b:
        return 0.0
    if tuple(a) == tuple(b):
        if len(a) < 2:
            return 0.0
        pairs = list(itertools.combinations(a, 2))
        return sum(topo.distance(u, v) for u, v in pairs) / len(pairs)
    total = 0.0
    count = 0
    for u in a:
        for v in b:
            if u != v:
                total += topo.distance(u, v)
                count += 1
    return total / count if count else 0.0


def job_graph_bipartition(
    topo: TopologyGraph,
    alloc: AllocationState,
    job: Job,
    jobgraph: JobGraph,
    tasks: Sequence[int],
    p0: Sequence[str],
    p1: Sequence[str],
    co_runners: Mapping[str, tuple[Job, frozenset[str]]],
    params: UtilityParams = UtilityParams(),
    interference_model=None,
    external: Sequence[ExternalRegion] = (),
    *,
    cache=None,
) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Split ``tasks`` into (A0 -> P0, A1 -> P1) by per-task utility.

    ``cache`` (a :class:`repro.core.drb.BipartitionCache`, optional)
    memoises the task-independent side metrics; the memos serve exactly
    what the direct computation below produces, so the split is
    identical either way.  Raises ``ValueError`` when the tasks cannot
    fit the two sides.
    """
    from repro.perf.interference import InterferenceModel

    tasks = list(tasks)
    p0 = list(p0)
    p1 = list(p1)
    if len(tasks) > len(p0) + len(p1):
        raise ValueError(
            f"{job.job_id}: {len(tasks)} tasks cannot fit "
            f"{len(p0)}+{len(p1)} GPUs"
        )
    model = interference_model or InterferenceModel(topo)

    # Side-level metrics are task-independent: compute once.
    if cache is not None:
        p0_t, p1_t = tuple(p0), tuple(p1)
        # Eq. 4 is evaluated directly: with the allocator's bus-sharing
        # memo warm it is cheaper than an epoch-scoped memo key.
        interference = (
            model.eq4_interference(job, p0_t, co_runners, alloc),
            model.eq4_interference(job, p1_t, co_runners, alloc),
        )
        frag = (
            cache.fragmentation(alloc, p0_t),
            cache.fragmentation(alloc, p1_t),
        )
        d_intra = (
            cache.mean_distance(p0_t, p0_t),
            cache.mean_distance(p1_t, p1_t),
        )
        d_cross = cache.mean_distance(p0_t, p1_t)
        d_external = [
            (
                cache.mean_distance(p0_t, tuple(region.gpus)),
                cache.mean_distance(p1_t, tuple(region.gpus)),
            )
            for region in external
        ]
    else:
        interference = (
            model.eq4_interference(job, p0, co_runners, alloc),
            model.eq4_interference(job, p1, co_runners, alloc),
        )
        frag = (
            fragmentation_after(topo, alloc, p0),
            fragmentation_after(topo, alloc, p1),
        )
        # representative distances from each side to each region
        d_intra = (_mean_distance(topo, p0, p0), _mean_distance(topo, p1, p1))
        d_cross = _mean_distance(topo, p0, p1)
        d_external = [
            (_mean_distance(topo, p0, region.gpus), _mean_distance(topo, p1, region.gpus))
            for region in external
        ]
    sides = (p0, p1)

    assigned: list[list[int]] = [[], []]
    # heaviest communicators first, deterministic tie-break on task id
    order = sorted(tasks, key=lambda t: (-jobgraph.degree(t), t))
    for task in order:
        costs = []
        for side in (0, 1):
            cost = 0.0
            # peers already assigned in this invocation
            for peer in assigned[side]:
                cost += jobgraph.weight(task, peer) * d_intra[side]
            for peer in assigned[1 - side]:
                cost += jobgraph.weight(task, peer) * d_cross
            # peers fixed by ancestor splits (C array)
            for region, (d0, d1) in zip(external, d_external):
                d = d0 if side == 0 else d1
                for peer in region.tasks:
                    cost += jobgraph.weight(task, peer) * d
            costs.append(cost)
        utilities = [
            raw_utility(costs[side], interference[side], frag[side], params)
            for side in (0, 1)
        ]
        # Algorithm 3 line 7: prefer side 0 when its utility is >= and
        # capacity allows; otherwise side 1; otherwise whichever fits.
        prefer = 0 if utilities[0] >= utilities[1] else 1
        if len(assigned[prefer]) < len(sides[prefer]):
            assigned[prefer].append(task)
        elif len(assigned[1 - prefer]) < len(sides[1 - prefer]):
            assigned[1 - prefer].append(task)
        else:  # pragma: no cover - guarded by the initial capacity check
            raise ValueError(f"{job.job_id}: both sub-partitions are full")
    return tuple(sorted(assigned[0])), tuple(sorted(assigned[1]))
