"""Objective function and utility (paper Eqs. 1-5).

The scheduler scores a candidate GPU allocation with three components:

* **communication cost** ``t`` (Eq. 3): sum of pairwise shortest-path
  distances between the allocated GPUs;
* **interference** ``I`` (Eq. 4): average slowdown across the new job
  and the running jobs it perturbs.  We express every term as
  ``collocated_time / solo_time >= 1`` so that *minimising* I is
  better and ``I == 1`` means no interference (the paper's Eq. 4 prints
  the inverted ratio but optimises in the same direction; see
  DESIGN.md);
* **fragmentation** ``omega`` (Eq. 5): the free-GPU fraction of the
  sockets the allocation touches *after* placement -- minimising it
  packs jobs into already-used domains and leaves whole sockets free
  for future jobs.

Two utility forms are provided:

* :func:`raw_utility` -- the paper's convex Eq. 2
  ``alpha_cc/t + alpha_b/I + alpha_d/omega`` (unbounded; used to compare
  candidate sub-partitions inside Algorithm 3);
* :func:`normalized_utility` -- the complement form of Eq. 1,
  ``sum_i alpha_i * (1 - x_i_hat)`` with every component normalised to
  [0, 1] against its best/worst case.  This bounded form is what job
  SLOs (``min_utility``) are checked against, matching the paper's
  normalisation "against the corresponding worst case".
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.obs import trace as _trace
from repro.topology.allocation import AllocationState
from repro.topology.graph import TopologyGraph
from repro.workload.job import Job

#: Shared SLO tolerance: a placement satisfies ``min_utility`` when its
#: utility is at least ``min_utility - SLO_EPS``.  One constant for the
#: scheduler's acceptance predicate (``TopoAwareScheduler._acceptable``,
#: ``PlacementSolution.satisfies``) and the violation counters
#: (``sim.metrics.slo_violations``, the telemetry observer) — previously
#: the counters used a looser 1e-9, so a placement the scheduler itself
#: judged SLO-failing could slip through uncounted.
SLO_EPS = 1e-12


@dataclass(frozen=True)
class UtilityParams:
    """Weights and normalisation bounds of the objective (Eq. 1).

    The paper's experiments use equal weights (0.33 each).
    ``interference_max`` is the slowdown factor treated as "worst case"
    when normalising Eq. 4's I.

    ``migration_cost_s`` / ``migration_weight`` parameterise the
    preemption/migration extension (TOPO-AWARE-PM): checkpointing and
    restoring a victim costs ``migration_cost_s`` seconds of extra solo
    work, and :func:`migration_penalty` converts that overhead into a
    utility-denominated term so eviction decisions trade it off against
    the Eq. 1 gain they unlock.  Both are inert for the paper's
    original policies (nothing reads them unless a policy evicts).
    """

    alpha_cc: float = 1.0 / 3.0
    alpha_b: float = 1.0 / 3.0
    alpha_d: float = 1.0 / 3.0
    interference_max: float = 1.25
    epsilon: float = 1e-6
    migration_cost_s: float = 30.0
    migration_weight: float = 0.25

    def __post_init__(self) -> None:
        total = self.alpha_cc + self.alpha_b + self.alpha_d
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"alpha weights must sum to 1, got {total}")
        if min(self.alpha_cc, self.alpha_b, self.alpha_d) < 0:
            raise ValueError("alpha weights must be non-negative")
        if self.interference_max <= 1.0:
            raise ValueError("interference_max must exceed 1.0")
        if self.migration_cost_s < 0:
            raise ValueError("migration_cost_s must be >= 0")
        if self.migration_weight < 0:
            raise ValueError("migration_weight must be >= 0")


@dataclass(frozen=True)
class SolutionMetrics:
    """Raw and normalised components for one candidate allocation."""

    comm_cost: float  # Eq. 3 t
    interference: float  # Eq. 4 I (>= 1)
    fragmentation: float  # Eq. 5 omega in [0, 1]
    comm_norm: float  # t normalised to [0, 1]
    interference_norm: float
    fragmentation_norm: float
    utility: float  # normalised utility in [0, 1]

    def objective(self, params: UtilityParams) -> float:
        """Eq. 1's minimisation objective (lower is better)."""
        return (
            params.alpha_cc * self.comm_norm
            + params.alpha_b * self.interference_norm
            + params.alpha_d * self.fragmentation_norm
        )


# ---------------------------------------------------------------------------
# Eq. 3: communication cost
# ---------------------------------------------------------------------------

def communication_cost(topo: TopologyGraph, gpus: Iterable[str]) -> float:
    """Sum of pairwise shortest-path distances (Eq. 3)."""
    return topo.pairwise_distance_sum(list(gpus))


_BOUNDS_CACHE: "weakref.WeakKeyDictionary[TopologyGraph, tuple[float, float]]" = (
    weakref.WeakKeyDictionary()
)


def _pair_distance_bounds(topo: TopologyGraph) -> tuple[float, float]:
    """(min, max) GPU pair distance, assuming homogeneous machines.

    The minimum comes from the densest machine-local pair; the maximum
    is a cross-machine pair when the topology has several machines,
    else the machine diameter.  Cached per topology object.
    """
    cached = _BOUNDS_CACHE.get(topo)
    if cached is not None:
        return cached
    machines = topo.machines()
    first = topo.gpus(machine=machines[0])
    if len(first) >= 2:
        local = [
            topo.distance(first[i], first[j])
            for i in range(len(first))
            for j in range(i + 1, len(first))
        ]
        dmin, dmax = min(local), max(local)
    else:
        dmin = dmax = 1.0
    if len(machines) > 1:
        other = topo.gpus(machine=machines[1])
        if other:
            dmax = max(dmax, topo.distance(first[0], other[0]))
    bounds = (dmin, dmax)
    _BOUNDS_CACHE[topo] = bounds
    return bounds


def comm_cost_bounds(topo: TopologyGraph, n_gpus: int) -> tuple[float, float]:
    """Best/worst Eq. 3 values for an ``n_gpus`` allocation."""
    if n_gpus < 2:
        return (0.0, 0.0)
    pairs = n_gpus * (n_gpus - 1) / 2
    dmin, dmax = _pair_distance_bounds(topo)
    return (pairs * dmin, pairs * dmax)


def normalized_comm_cost(topo: TopologyGraph, gpus: Iterable[str]) -> float:
    """Eq. 3 value scaled to [0, 1] against the best/worst allocation."""
    gpus = list(gpus)
    if len(gpus) < 2:
        return 0.0
    best, worst = comm_cost_bounds(topo, len(gpus))
    t = communication_cost(topo, gpus)
    if worst <= best:
        return 0.0
    return min(1.0, max(0.0, (t - best) / (worst - best)))


# ---------------------------------------------------------------------------
# Eq. 5: fragmentation
# ---------------------------------------------------------------------------

def fragmentation_after(
    topo: TopologyGraph, alloc: AllocationState, gpus: Iterable[str]
) -> float:
    """Free-GPU fraction of the touched sockets after placing ``gpus``.

    0 = the placement fills its sockets completely (no fragmentation
    left behind); 1 = the sockets remain entirely free (impossible once
    placed, but the bound anchors the normalisation).
    """
    gpu_set = set(gpus)
    sockets = sorted({topo.socket_of(g) for g in gpu_set})
    if not sockets:
        return 0.0
    total = 0.0
    for s in sockets:
        members = topo.gpus(socket=s)
        free_after = sum(
            1 for g in members if alloc.is_free(g) and g not in gpu_set
        )
        total += free_after / len(members)
    return total / len(sockets)


# ---------------------------------------------------------------------------
# utilities
# ---------------------------------------------------------------------------

def normalize_interference(interference: float, params: UtilityParams) -> float:
    span = params.interference_max - 1.0
    return min(1.0, max(0.0, (interference - 1.0) / span))


def raw_utility(
    comm_cost_value: float,
    interference: float,
    fragmentation: float,
    params: UtilityParams = UtilityParams(),
) -> float:
    """The paper's Eq. 2 convex utility (unbounded, higher is better)."""
    eps = params.epsilon
    return (
        params.alpha_cc / max(comm_cost_value, eps)
        + params.alpha_b / max(interference, eps)
        + params.alpha_d / max(fragmentation, eps)
    )


def normalized_utility(
    comm_norm: float,
    interference_norm: float,
    fragmentation_norm: float,
    params: UtilityParams = UtilityParams(),
) -> float:
    """Bounded utility in [0, 1]: ``sum_i alpha_i * (1 - x_i_hat)``."""
    for name, x in (
        ("comm_norm", comm_norm),
        ("interference_norm", interference_norm),
        ("fragmentation_norm", fragmentation_norm),
    ):
        if not 0.0 <= x <= 1.0 + 1e-9:
            raise ValueError(f"{name} must be in [0, 1], got {x}")
    return (
        params.alpha_cc * (1.0 - comm_norm)
        + params.alpha_b * (1.0 - interference_norm)
        + params.alpha_d * (1.0 - fragmentation_norm)
    )


def migration_penalty(
    remaining_wall_s: float,
    params: UtilityParams = UtilityParams(),
) -> float:
    """Utility-denominated cost of evicting/migrating a running job.

    The checkpoint/restore overhead (``migration_cost_s``) is charged
    relative to how much wall-clock work the victim still has:
    migrating a nearly-finished job pays the full ``migration_weight``
    penalty (the fixed overhead dominates whatever better placement it
    would enjoy), while a job with hours left amortises the overhead to
    almost nothing.  The result lives on the same [0, 1] scale as the
    normalised Eq. 1 utility, so policies can compare
    ``u_new - u_old - penalty`` directly.
    """
    if remaining_wall_s <= 0:
        return params.migration_weight
    ratio = params.migration_cost_s / remaining_wall_s
    return params.migration_weight * min(1.0, ratio)


def migration_term(
    remaining_wall_s: float,
    params: UtilityParams = UtilityParams(),
) -> dict:
    """Provenance view of one migration-cost evaluation.

    Mirrors the per-term shape of :func:`utility_breakdown` so
    ``repro explain`` renders eviction decisions with the same
    value/weight/contribution vocabulary as placement decisions.
    """
    penalty = migration_penalty(remaining_wall_s, params)
    return {
        "cost_s": params.migration_cost_s,
        "remaining_wall_s": remaining_wall_s,
        "weight": params.migration_weight,
        "penalty": penalty,
    }


def utility_breakdown(
    topo: TopologyGraph,
    n_gpus: int,
    metrics: SolutionMetrics,
    params: UtilityParams = UtilityParams(),
    *,
    migration: dict | None = None,
) -> dict:
    """Per-term explanation of one scored allocation (provenance).

    Derives, for each Eq. 1 component, the raw value, its normalised
    form, the [best, worst] bounds the normalisation ran against, the
    alpha weight, and the weighted contribution ``alpha * (1 - x_hat)``
    to the final utility.  Pure function of already-computed metrics —
    the decision recorder calls it *after* the hot path scored the
    solution, so attaching provenance changes no simulation result.

    ``migration`` (optional, a :func:`migration_term` dict) attaches
    the migration-cost term when the breakdown explains an eviction or
    live-migration decision.
    """
    comm_best, comm_worst = comm_cost_bounds(topo, n_gpus)

    def term(value: float, norm: float, bounds: tuple[float, float],
             weight: float) -> dict:
        return {
            "value": value,
            "norm": norm,
            "bounds": [bounds[0], bounds[1]],
            "weight": weight,
            "contribution": weight * (1.0 - norm),
        }

    breakdown = {
        "value": metrics.utility,
        "terms": {
            "comm_cost": term(
                metrics.comm_cost,
                metrics.comm_norm,
                (comm_best, comm_worst),
                params.alpha_cc,
            ),
            "interference": term(
                metrics.interference,
                metrics.interference_norm,
                (1.0, params.interference_max),
                params.alpha_b,
            ),
            "fragmentation": term(
                metrics.fragmentation,
                metrics.fragmentation_norm,
                (0.0, 1.0),
                params.alpha_d,
            ),
        },
    }
    if migration is not None:
        breakdown["terms"]["migration"] = migration
    return breakdown


def evaluate_solution(
    topo: TopologyGraph,
    alloc: AllocationState,
    job: Job,
    gpus: Iterable[str],
    co_runners: Mapping[str, tuple[Job, frozenset[str]]],
    params: UtilityParams = UtilityParams(),
    interference_model=None,
    *,
    cache=None,
) -> SolutionMetrics:
    """Score a concrete allocation: Eqs. 3-5 plus normalised utility.

    ``cache`` (a :class:`repro.core.drb.BipartitionCache`, optional)
    memoises the component metrics; every memo serves exactly what the
    direct computation produces, so the metrics are identical either
    way.
    """
    from repro.perf.interference import InterferenceModel

    gpus = list(gpus)
    model = interference_model or InterferenceModel(topo)
    with _trace.span("utility.evaluate", job_id=job.job_id, gpus=len(gpus)) as sp:
        if cache is not None:
            gpus_t = tuple(gpus)
            t = cache.comm_cost(gpus_t)
            t_norm = cache.comm_norm(gpus_t)
            interference = model.eq4_interference(job, gpus_t, co_runners, alloc)
            frag = cache.fragmentation(alloc, gpus_t)
        else:
            t = communication_cost(topo, gpus)
            t_norm = normalized_comm_cost(topo, gpus)
            interference = model.eq4_interference(job, gpus, co_runners, alloc)
            frag = fragmentation_after(topo, alloc, gpus)
        i_norm = normalize_interference(interference, params)
        utility = normalized_utility(t_norm, i_norm, frag, params)
        sp.set(
            comm_cost=t,
            comm_norm=t_norm,
            interference=interference,
            interference_norm=i_norm,
            fragmentation=frag,
            utility=utility,
        )
    return SolutionMetrics(
        comm_cost=t,
        interference=interference,
        fragmentation=frag,
        comm_norm=t_norm,
        interference_norm=i_norm,
        fragmentation_norm=frag,
        utility=utility,
    )
