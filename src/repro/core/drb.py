"""Dual Recursive Bipartitioning (paper Algorithm 2).

``drb_map`` recursively co-partitions the job graph and the physical
GPU pool: at every level the pool is split into two topologically
coherent halves (Fiduccia-Mattheyses over inverse-distance affinity,
:mod:`repro.core.bipartition`) and the tasks are split by utility
(Algorithm 3, :mod:`repro.core.job_bipartition`); recursion bottoms out
when a sub-pool has a single GPU, which receives at most one task.

The result is an injective ``task -> GPU`` mapping over free GPUs,
with complexity Theta(|E_A| * log2(|V_P|)) as analysed in the paper.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.bipartition import physical_bipartition
from repro.core.job_bipartition import (
    ExternalRegion,
    _mean_distance,
    job_graph_bipartition,
)
from repro.core.utility import (
    UtilityParams,
    communication_cost,
    fragmentation_after,
    normalized_comm_cost,
)
from repro.obs import trace as _trace
from repro.topology.allocation import AllocationState
from repro.topology.graph import TopologyGraph
from repro.workload.job import Job
from repro.workload.jobgraph import JobGraph


@dataclass
class DRBCacheStats:
    """Why the incremental DRB is fast — emitted into bench artifacts."""

    splits_reused: int = 0
    splits_computed: int = 0
    rounds_incremental: int = 0
    rounds_rebuilt: int = 0
    patched_machines: int = 0
    validation_failures: int = 0
    metric_hits: int = 0
    metric_misses: int = 0

    def as_dict(self) -> dict:
        total = self.splits_reused + self.splits_computed
        return {
            "splits_reused": self.splits_reused,
            "splits_computed": self.splits_computed,
            "split_reuse_rate": (self.splits_reused / total) if total else 0.0,
            "rounds_incremental": self.rounds_incremental,
            "rounds_rebuilt": self.rounds_rebuilt,
            "patched_machines": self.patched_machines,
            "validation_failures": self.validation_failures,
            "metric_hits": self.metric_hits,
            "metric_misses": self.metric_misses,
        }


class BipartitionCache:
    """Incremental physical-bipartition tree + side-metric memos.

    ``physical_bipartition(topo, pool)`` is a pure function of the GPU
    *set* (the topology is immutable during a run and the function
    sorts its input), so every split in the DRB recursion tree can be
    cached keyed on the canonical pool and replayed bit-identically.
    Between decision rounds the free pool usually changes on one or two
    machines (one placement / one job finish); :meth:`sync` then evicts
    only the cached splits whose pools touch those machines — patching
    the affected subtrees — instead of dropping the whole tree.  When
    the allocator's delta log cannot name the changed machines, or the
    delta spans more than :attr:`max_patch_machines`, or a cached entry
    fails validation, the cache falls back to a full rebuild.  Either
    way every value handed out is exactly what the direct computation
    would produce: the cache can only ever trade recomputation for
    memory, never change a result.

    Two metric memos ride along, both serving the exact values the
    uncached path computes:

    * *pure* memos — mean region distance and Eq. 3 communication cost,
      functions of the topology and a GPU tuple only; never invalidated;
    * *epoch-scoped* memos — Eq. 5 fragmentation for a candidate side,
      additionally keyed on the per-machine pool versions of every
      machine the side touches.  Those versions pin the machines' free
      GPUs and resident jobs (with their full GPU sets — any allocation
      change of a resident job bumps all its machines), which is the
      entire mutable input of the metric.  (Eq. 4 interference is *not*
      memoised here: with the allocator's bus-sharing memo warm the
      direct evaluation is cheaper than building the memo key.)

    All three stores are LRU-bounded; eviction only forces a recompute.
    """

    SPLITS_MAX = 16384
    PURE_MAX = 65536
    SCOPED_MAX = 16384
    #: deltas touching more machines than this trigger a full rebuild —
    #: eviction work would approach the cost of starting over.
    MAX_PATCH_MACHINES = 8

    def __init__(
        self,
        topo: TopologyGraph,
        *,
        max_patch_machines: int = MAX_PATCH_MACHINES,
    ) -> None:
        self.topo = topo
        self.max_patch_machines = max_patch_machines
        self.stats = DRBCacheStats()
        self._splits: OrderedDict[
            tuple[str, ...], tuple[tuple[str, ...], tuple[str, ...]]
        ] = OrderedDict()
        self._split_machines: dict[tuple[str, ...], tuple[str, ...]] = {}
        self._by_machine: dict[str, set[tuple[str, ...]]] = {}
        #: monotonically increasing patch-round counter; split entries
        #: carry the counter value they were last validated at, so the
        #: O(pool) integrity check runs once per entry per patch round
        #: instead of on every hit (entries a patch forgets are gone;
        #: survivors provably did not touch a changed machine).
        self._patches = 0
        self._validated: dict[tuple[str, ...], int] = {}
        self._pure: OrderedDict[tuple, float] = OrderedDict()
        self._scoped: OrderedDict[tuple, float] = OrderedDict()
        self._machines: dict[tuple[str, ...], tuple[str, ...]] = {}
        #: per-epoch signature memo: gpus tuple -> machine-version
        #: signature.  Valid only between two :meth:`sync` calls at the
        #: same allocation version (sync clears it on epoch change), so
        #: entries can never go stale.
        self._sigs: dict[tuple[str, ...], tuple[int, ...]] = {}
        self._epoch: int | None = None

    # ------------------------------------------------------------------
    # epoch synchronisation
    # ------------------------------------------------------------------
    def sync(self, alloc: AllocationState) -> None:
        """Bring the split tree up to date with ``alloc``'s epoch.

        Called once per proposal; a no-op when nothing changed since
        the last call.
        """
        version = alloc.version
        if self._epoch == version:
            return
        changed = (
            None
            if self._epoch is None
            else alloc.machines_changed_since(self._epoch)
        )
        self._epoch = version
        self._sigs.clear()
        if changed is None or len(changed) > self.max_patch_machines:
            self._drop_splits()
            self.stats.rounds_rebuilt += 1
            return
        self.stats.rounds_incremental += 1
        self.stats.patched_machines += len(changed)
        self._patches += 1
        for machine in changed:
            for key in list(self._by_machine.get(machine, ())):
                self._forget_split(key)

    def _drop_splits(self) -> None:
        self._splits.clear()
        self._split_machines.clear()
        self._by_machine.clear()
        self._validated.clear()

    def _forget_split(self, key: tuple[str, ...]) -> None:
        self._splits.pop(key, None)
        self._validated.pop(key, None)
        for machine in self._split_machines.pop(key, ()):
            keys = self._by_machine.get(machine)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._by_machine[machine]

    # ------------------------------------------------------------------
    # splits
    # ------------------------------------------------------------------
    def split(
        self, pool: Sequence[str]
    ) -> tuple[tuple[str, ...], tuple[str, ...]]:
        """Cached ``physical_bipartition`` over the canonical pool."""
        key = tuple(sorted(pool))
        cached = self._splits.get(key)
        if cached is not None:
            # entries forgotten by a patch are gone, so a surviving
            # entry only needs the O(pool) integrity check again after
            # a patch round has run since it was last validated.
            if self._validated.get(key) == self._patches:
                self._splits.move_to_end(key)
                self.stats.splits_reused += 1
                return cached
            p0, p1 = cached
            if (
                len(p0) + len(p1) == len(key)
                and set(p0).isdisjoint(p1)
                and set(p0).union(p1) == set(key)
            ):
                self._validated[key] = self._patches
                self._splits.move_to_end(key)
                self.stats.splits_reused += 1
                return cached
            # a corrupted entry means the patching invariants broke;
            # distrust the whole tree and start over.
            self.stats.validation_failures += 1
            self._drop_splits()
        result = physical_bipartition(self.topo, key)
        self.stats.splits_computed += 1
        machines = tuple({self.topo.machine_of(g) for g in key})
        self._splits[key] = result
        self._split_machines[key] = machines
        self._validated[key] = self._patches
        for machine in machines:
            self._by_machine.setdefault(machine, set()).add(key)
        while len(self._splits) > self.SPLITS_MAX:
            oldest = next(iter(self._splits))
            self._forget_split(oldest)
        return result

    # ------------------------------------------------------------------
    # pure metric memos (topology-only inputs)
    # ------------------------------------------------------------------
    def _pure_get(self, key: tuple):
        value = self._pure.get(key)
        if value is not None:
            self._pure.move_to_end(key)
            self.stats.metric_hits += 1
        return value

    def _pure_put(self, key: tuple, value: float) -> float:
        self.stats.metric_misses += 1
        self._pure[key] = value
        if len(self._pure) > self.PURE_MAX:
            self._pure.popitem(last=False)
        return value

    def mean_distance(
        self, a: tuple[str, ...], b: tuple[str, ...]
    ) -> float:
        key = ("md", a, b)
        value = self._pure_get(key)
        if value is None:
            value = self._pure_put(key, _mean_distance(self.topo, a, b))
        return value

    def comm_cost(self, gpus: tuple[str, ...]) -> float:
        key = ("cc", gpus)
        value = self._pure_get(key)
        if value is None:
            value = self._pure_put(key, communication_cost(self.topo, gpus))
        return value

    def comm_norm(self, gpus: tuple[str, ...]) -> float:
        key = ("cn", gpus)
        value = self._pure_get(key)
        if value is None:
            value = self._pure_put(
                key, normalized_comm_cost(self.topo, gpus)
            )
        return value

    # ------------------------------------------------------------------
    # epoch-scoped metric memos (pinned by per-machine pool versions)
    # ------------------------------------------------------------------
    def _machine_sig(
        self, alloc: AllocationState, gpus: tuple[str, ...]
    ) -> tuple[int, ...]:
        # consecutive metric lookups (eq4 then fragmentation on the
        # same side) rebuild the same signature; within one epoch it
        # cannot change, so serve it from the per-sync memo.
        sig = self._sigs.get(gpus)
        if sig is not None:
            return sig
        # the machine set of a GPU tuple is a pure function of the
        # (immutable) topology, so it is memoised separately from the
        # per-version signature built on top of it.
        machines = self._machines.get(gpus)
        if machines is None:
            if len(self._machines) > self.PURE_MAX:
                self._machines.clear()
            machines = tuple(sorted({self.topo.machine_of(g) for g in gpus}))
            self._machines[gpus] = machines
        sig = tuple([alloc.machine_pool_version(m) for m in machines])
        self._sigs[gpus] = sig
        return sig

    def _scoped_get(self, key: tuple):
        value = self._scoped.get(key)
        if value is not None:
            self._scoped.move_to_end(key)
            self.stats.metric_hits += 1
        return value

    def _scoped_put(self, key: tuple, value: float) -> float:
        self.stats.metric_misses += 1
        self._scoped[key] = value
        if len(self._scoped) > self.SCOPED_MAX:
            self._scoped.popitem(last=False)
        return value

    def fragmentation(
        self, alloc: AllocationState, gpus: tuple[str, ...]
    ) -> float:
        key = ("fr", gpus, self._machine_sig(alloc, gpus))
        value = self._scoped_get(key)
        if value is None:
            value = self._scoped_put(
                key, fragmentation_after(self.topo, alloc, gpus)
            )
        return value

def drb_map(
    topo: TopologyGraph,
    alloc: AllocationState,
    job: Job,
    jobgraph: JobGraph,
    pool: Sequence[str],
    co_runners: Mapping[str, tuple[Job, frozenset[str]]],
    params: UtilityParams = UtilityParams(),
    interference_model=None,
    *,
    cache: BipartitionCache | None = None,
) -> dict[int, str]:
    """Map every task of ``jobgraph`` onto a distinct GPU from ``pool``.

    ``cache`` (a :class:`BipartitionCache` already synced to ``alloc``'s
    epoch) reuses physical splits and side metrics across calls without
    changing any mapping.  Raises ``ValueError`` when the pool is
    smaller than the task count.
    """
    from repro.perf.interference import InterferenceModel

    pool = list(pool)
    tasks = list(jobgraph.tasks())
    if len(tasks) > len(pool):
        raise ValueError(
            f"{job.job_id}: needs {len(tasks)} GPUs, pool has {len(pool)}"
        )
    model = interference_model or InterferenceModel(topo)
    mapping: dict[int, str] = {}
    with _trace.span(
        "drb.map", job_id=job.job_id, tasks=len(tasks), pool=len(pool)
    ):
        _recurse(
            topo,
            alloc,
            job,
            jobgraph,
            tuple(tasks),
            tuple(pool),
            co_runners,
            params,
            model,
            (),
            mapping,
            cache=cache,
        )
    return mapping


def _recurse(
    topo: TopologyGraph,
    alloc: AllocationState,
    job: Job,
    jobgraph: JobGraph,
    tasks: tuple[int, ...],
    pool: tuple[str, ...],
    co_runners: Mapping[str, tuple[Job, frozenset[str]]],
    params: UtilityParams,
    model,
    external: tuple[ExternalRegion, ...],
    mapping: dict[int, str],
    depth: int = 0,
    *,
    cache: BipartitionCache | None = None,
) -> None:
    if not tasks:
        return
    if len(pool) == 1:
        if len(tasks) != 1:  # pragma: no cover - capacities guarantee this
            raise ValueError(
                f"{job.job_id}: {len(tasks)} tasks left for a single GPU"
            )
        mapping[tasks[0]] = pool[0]
        return
    with _trace.span(
        "drb.recurse", depth=depth, tasks=len(tasks), pool=len(pool)
    ) as sp:
        if cache is not None:
            p0, p1 = cache.split(pool)
        else:
            p0, p1 = physical_bipartition(topo, pool)
        a0, a1 = job_graph_bipartition(
            topo,
            alloc,
            job,
            jobgraph,
            tasks,
            p0,
            p1,
            co_runners,
            params,
            model,
            external,
            cache=cache,
        )
        sp.set(split_tasks=[len(a0), len(a1)], split_pool=[len(p0), len(p1)])
        _recurse(
            topo, alloc, job, jobgraph, a0, p0, co_runners, params, model,
            external + ((ExternalRegion(tasks=a1, gpus=p1),) if a1 else ()),
            mapping,
            depth + 1,
            cache=cache,
        )
        _recurse(
            topo, alloc, job, jobgraph, a1, p1, co_runners, params, model,
            external + ((ExternalRegion(tasks=a0, gpus=p0),) if a0 else ()),
            mapping,
            depth + 1,
            cache=cache,
        )
