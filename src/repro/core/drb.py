"""Dual Recursive Bipartitioning (paper Algorithm 2).

``drb_map`` recursively co-partitions the job graph and the physical
GPU pool: at every level the pool is split into two topologically
coherent halves (Fiduccia-Mattheyses over inverse-distance affinity,
:mod:`repro.core.bipartition`) and the tasks are split by utility
(Algorithm 3, :mod:`repro.core.job_bipartition`); recursion bottoms out
when a sub-pool has a single GPU, which receives at most one task.

The result is an injective ``task -> GPU`` mapping over free GPUs,
with complexity Theta(|E_A| * log2(|V_P|)) as analysed in the paper.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.bipartition import physical_bipartition
from repro.core.job_bipartition import ExternalRegion, job_graph_bipartition
from repro.core.utility import UtilityParams
from repro.obs import trace as _trace
from repro.topology.allocation import AllocationState
from repro.topology.graph import TopologyGraph
from repro.workload.job import Job
from repro.workload.jobgraph import JobGraph


def drb_map(
    topo: TopologyGraph,
    alloc: AllocationState,
    job: Job,
    jobgraph: JobGraph,
    pool: Sequence[str],
    co_runners: Mapping[str, tuple[Job, frozenset[str]]],
    params: UtilityParams = UtilityParams(),
    interference_model=None,
) -> dict[int, str]:
    """Map every task of ``jobgraph`` onto a distinct GPU from ``pool``.

    Raises ``ValueError`` when the pool is smaller than the task count.
    """
    from repro.perf.interference import InterferenceModel

    pool = list(pool)
    tasks = list(jobgraph.tasks())
    if len(tasks) > len(pool):
        raise ValueError(
            f"{job.job_id}: needs {len(tasks)} GPUs, pool has {len(pool)}"
        )
    model = interference_model or InterferenceModel(topo)
    mapping: dict[int, str] = {}
    with _trace.span(
        "drb.map", job_id=job.job_id, tasks=len(tasks), pool=len(pool)
    ):
        _recurse(
            topo,
            alloc,
            job,
            jobgraph,
            tuple(tasks),
            tuple(pool),
            co_runners,
            params,
            model,
            (),
            mapping,
        )
    return mapping


def _recurse(
    topo: TopologyGraph,
    alloc: AllocationState,
    job: Job,
    jobgraph: JobGraph,
    tasks: tuple[int, ...],
    pool: tuple[str, ...],
    co_runners: Mapping[str, tuple[Job, frozenset[str]]],
    params: UtilityParams,
    model,
    external: tuple[ExternalRegion, ...],
    mapping: dict[int, str],
    depth: int = 0,
) -> None:
    if not tasks:
        return
    if len(pool) == 1:
        if len(tasks) != 1:  # pragma: no cover - capacities guarantee this
            raise ValueError(
                f"{job.job_id}: {len(tasks)} tasks left for a single GPU"
            )
        mapping[tasks[0]] = pool[0]
        return
    with _trace.span(
        "drb.recurse", depth=depth, tasks=len(tasks), pool=len(pool)
    ) as sp:
        p0, p1 = physical_bipartition(topo, pool)
        a0, a1 = job_graph_bipartition(
            topo,
            alloc,
            job,
            jobgraph,
            tasks,
            p0,
            p1,
            co_runners,
            params,
            model,
            external,
        )
        sp.set(split_tasks=[len(a0), len(a1)], split_pool=[len(p0), len(p1)])
        _recurse(
            topo, alloc, job, jobgraph, a0, p0, co_runners, params, model,
            external + ((ExternalRegion(tasks=a1, gpus=p1),) if a1 else ()),
            mapping,
            depth + 1,
        )
        _recurse(
            topo, alloc, job, jobgraph, a1, p1, co_runners, params, model,
            external + ((ExternalRegion(tasks=a0, gpus=p0),) if a0 else ()),
            mapping,
            depth + 1,
        )
