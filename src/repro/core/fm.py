"""Fiduccia-Mattheyses min-cut bipartitioning.

The paper's DRB mapper splits the physical graph with "the well-known
Fiduccia Mattheyses algorithm that minimizes the cut-sets in linear
time" (Section 4.4).  This is a faithful implementation for weighted
undirected graphs:

* pass-based: every pass tentatively moves each vertex exactly once in
  descending-gain order, then rolls back to the best prefix;
* gain of a vertex = (cut weight removed) - (cut weight added) if it
  switched sides;
* side capacities are respected at every step, which also guarantees
  both sides stay non-empty for suitable capacities;
* deterministic: ties broken by vertex order of the input sequence.

Affinity semantics: edge weights are *affinities* (higher = the
endpoints want to stay together).  Minimising the cut therefore splits
along the weakest connections -- for physical GPU graphs the affinity
is the inverse topological distance, so FM cuts along sockets/machines.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

from repro.obs import trace as _trace

Vertex = Hashable


@dataclass(frozen=True)
class FMResult:
    """Outcome of a bipartition: the two sides and the final cut weight."""

    side0: tuple[Vertex, ...]
    side1: tuple[Vertex, ...]
    cut: float
    passes: int
    #: total cut weight removed by the kept move prefixes across passes
    gain: float = 0.0

    def side_of(self, v: Vertex) -> int:
        if v in self.side0:
            return 0
        if v in self.side1:
            return 1
        raise KeyError(v)


def cut_weight(
    affinity: Mapping[Vertex, Mapping[Vertex, float]],
    side0: set[Vertex],
    side1: set[Vertex],
) -> float:
    """Total affinity crossing the partition."""
    total = 0.0
    for u in side0:
        for v, w in affinity.get(u, {}).items():
            if v in side1:
                total += w
    return total


def _validate(
    vertices: Sequence[Vertex],
    affinity: Mapping[Vertex, Mapping[Vertex, float]],
) -> None:
    vset = set(vertices)
    if len(vset) != len(vertices):
        raise ValueError("duplicate vertices")
    for u, nbrs in affinity.items():
        if u not in vset:
            raise ValueError(f"affinity mentions unknown vertex {u!r}")
        for v, w in nbrs.items():
            if v not in vset:
                raise ValueError(f"affinity mentions unknown vertex {v!r}")
            if w < 0:
                raise ValueError(f"negative affinity {u!r}--{v!r}")
            back = affinity.get(v, {}).get(u)
            if back is None or abs(back - w) > 1e-12:
                raise ValueError(f"affinity not symmetric on {u!r}--{v!r}")


def fm_bipartition(
    vertices: Sequence[Vertex],
    affinity: Mapping[Vertex, Mapping[Vertex, float]],
    *,
    initial: tuple[Sequence[Vertex], Sequence[Vertex]] | None = None,
    capacities: tuple[int, int] | None = None,
    max_passes: int = 10,
    validate: bool = True,
) -> FMResult:
    """Bipartition ``vertices`` minimising the affinity cut.

    ``affinity`` is a symmetric dict-of-dicts.  ``initial`` seeds the
    partition (default: first half / second half of ``vertices``);
    ``capacities`` bounds each side's size (default: balanced halves,
    ``ceil(n/2)`` each).  Raises ``ValueError`` for infeasible inputs.
    """
    recorder = _trace.ACTIVE
    if recorder is None:
        return _fm_bipartition(
            vertices, affinity, initial, capacities, max_passes, validate
        )
    with recorder.span("fm.bipartition", n=len(vertices)) as sp:
        result = _fm_bipartition(
            vertices, affinity, initial, capacities, max_passes, validate
        )
        sp.set(passes=result.passes, cut=result.cut, gain=result.gain)
        return result


def _fm_bipartition(
    vertices: Sequence[Vertex],
    affinity: Mapping[Vertex, Mapping[Vertex, float]],
    initial: tuple[Sequence[Vertex], Sequence[Vertex]] | None,
    capacities: tuple[int, int] | None,
    max_passes: int,
    validate: bool,
) -> FMResult:
    n = len(vertices)
    if n < 2:
        raise ValueError("need at least two vertices to bipartition")
    if validate:
        _validate(vertices, affinity)

    if capacities is None:
        # Leave room to move: a hard 50/50 split would freeze FM (both
        # sides at capacity means no vertex can ever move).  Only the
        # non-emptiness of each side is enforced by default; callers
        # needing stricter balance pass explicit capacities.
        cap0 = cap1 = n - 1
    else:
        cap0, cap1 = capacities
    if cap0 < 1 or cap1 < 1 or cap0 + cap1 < n:
        raise ValueError(f"infeasible capacities {capacities} for {n} vertices")

    order = {v: i for i, v in enumerate(vertices)}
    if initial is None:
        half = (n + 1) // 2
        side = {v: (0 if i < half else 1) for i, v in enumerate(vertices)}
    else:
        init0, init1 = initial
        side = {}
        for v in init0:
            side[v] = 0
        for v in init1:
            if v in side:
                raise ValueError(f"vertex {v!r} on both initial sides")
            side[v] = 1
        if set(side) != set(vertices):
            raise ValueError("initial partition must cover exactly all vertices")
    sizes = [sum(1 for s in side.values() if s == 0), 0]
    sizes[1] = n - sizes[0]
    if sizes[0] > cap0 or sizes[1] > cap1:
        raise ValueError(
            f"initial partition sizes {tuple(sizes)} exceed capacities {(cap0, cap1)}"
        )

    def gain(v: Vertex) -> float:
        g = 0.0
        sv = side[v]
        for u, w in affinity.get(v, {}).items():
            if u == v:
                continue
            g += w if side[u] != sv else -w
        return g

    caps = (cap0, cap1)
    passes = 0
    total_gain = 0.0
    for _ in range(max_passes):
        passes += 1
        locked: set[Vertex] = set()
        gains = {v: gain(v) for v in vertices}
        # lazy max-heap keyed by (-gain, original order)
        heap = [(-gains[v], order[v], v) for v in vertices]
        heapq.heapify(heap)
        moves: list[Vertex] = []
        cum = 0.0
        best_cum = 0.0
        best_prefix = 0
        while heap:
            neg_g, _, v = heapq.heappop(heap)
            if v in locked:
                continue
            if -neg_g != gains[v]:  # stale entry
                heapq.heappush(heap, (-gains[v], order[v], v))
                continue
            target = 1 - side[v]
            if sizes[target] + 1 > caps[target]:
                # cannot move this vertex now; try the next-best one.
                # Re-queue with a sentinel so we do not loop forever:
                # skip it for the rest of this pass.
                locked.add(v)
                continue
            # apply move
            locked.add(v)
            sizes[side[v]] -= 1
            sizes[target] += 1
            side[v] = target
            cum += gains[v]
            moves.append(v)
            if cum > best_cum + 1e-12:
                best_cum = cum
                best_prefix = len(moves)
            # update neighbour gains
            for u, w in affinity.get(v, {}).items():
                if u in locked or u == v:
                    continue
                # v just arrived on side[v]: edges to same-side
                # neighbours become internal (their gain drops by 2w),
                # edges to the other side become cut (gain rises by 2w).
                gains[u] += -2 * w if side[u] == side[v] else 2 * w
                heapq.heappush(heap, (-gains[u], order[u], u))
        # roll back past the best prefix
        for v in reversed(moves[best_prefix:]):
            target = 1 - side[v]
            sizes[side[v]] -= 1
            sizes[target] += 1
            side[v] = target
        total_gain += best_cum
        if best_cum <= 1e-12:
            break

    side0 = tuple(v for v in vertices if side[v] == 0)
    side1 = tuple(v for v in vertices if side[v] == 1)
    final_cut = cut_weight(affinity, set(side0), set(side1))
    return FMResult(
        side0=side0, side1=side1, cut=final_cut, passes=passes, gain=total_gain
    )


def affinity_from_distance(
    vertices: Sequence[Vertex],
    distance: Mapping[tuple[Vertex, Vertex], float],
) -> dict[Vertex, dict[Vertex, float]]:
    """Build an affinity dict as inverse distance over all pairs."""
    aff: dict[Vertex, dict[Vertex, float]] = {v: {} for v in vertices}
    for u, v in itertools.combinations(vertices, 2):
        d = distance.get((u, v), distance.get((v, u)))
        if d is None:
            raise ValueError(f"missing distance for pair ({u!r}, {v!r})")
        if d <= 0:
            raise ValueError(f"non-positive distance for pair ({u!r}, {v!r})")
        w = 1.0 / d
        aff[u][v] = w
        aff[v][u] = w
    return aff
