"""The paper's core contribution: utility-driven graph-mapping placement.

* :mod:`repro.core.fm` -- Fiduccia-Mattheyses min-cut bipartitioning,
  used to split the physical GPU graph (Algorithm 2's
  ``physicalGraphBiPartition``).
* :mod:`repro.core.bipartition` -- hierarchy-guided physical splits
  refined by FM.
* :mod:`repro.core.utility` -- Eqs. 1-5: communication cost,
  interference, fragmentation and the utility function.
* :mod:`repro.core.job_bipartition` -- Algorithm 3: utility-based job
  graph bipartitioning.
* :mod:`repro.core.drb` -- Algorithm 2: Dual Recursive Bipartitioning.
* :mod:`repro.core.constraints` -- host filtering (Algorithm 1's
  ``filterHostsByConstraints``).
* :mod:`repro.core.placement` -- the end-to-end psi(A, P) placement
  engine producing scored :class:`PlacementSolution` objects.
"""

from repro.core.fm import fm_bipartition, FMResult
from repro.core.bipartition import physical_bipartition
from repro.core.utility import (
    UtilityParams,
    SolutionMetrics,
    communication_cost,
    normalized_utility,
    raw_utility,
)
from repro.core.job_bipartition import job_graph_bipartition
from repro.core.drb import drb_map
from repro.core.constraints import filter_hosts, CandidatePool
from repro.core.placement import PlacementEngine, PlacementSolution

__all__ = [
    "CandidatePool",
    "FMResult",
    "PlacementEngine",
    "PlacementSolution",
    "SolutionMetrics",
    "UtilityParams",
    "communication_cost",
    "drb_map",
    "filter_hosts",
    "fm_bipartition",
    "job_graph_bipartition",
    "normalized_utility",
    "physical_bipartition",
    "raw_utility",
]
