"""gpu-topo-aware: topology-aware GPU scheduling for learning workloads.

A from-scratch Python reproduction of

    Amaral, Polo, Carrera, Seelam, Steinder.
    "Topology-Aware GPU Scheduling for Learning Workloads in Cloud
    Environments", SC'17.  DOI 10.1145/3126908.3126933

Quickstart::

    from repro import (
        power8_minsky, AllocationState, PlacementEngine, Job, ModelType,
    )

    topo = power8_minsky()
    alloc = AllocationState(topo)
    engine = PlacementEngine(topo, alloc)
    job = Job("train-0", ModelType.ALEXNET, batch_size=1, num_gpus=2,
              min_utility=0.5)
    solution = engine.propose(job)
    print(solution.gpus, solution.utility, solution.p2p)

See DESIGN.md for the architecture and EXPERIMENTS.md for the
paper-vs-measured results of every table and figure.
"""

from repro.topology import (
    AllocationState,
    LinkSpec,
    LinkType,
    NodeKind,
    TopologyGraph,
    cluster,
    dgx1,
    machine,
    power8_minsky,
    power8_pcie_k80,
)
from repro.workload import (
    BatchClass,
    GeneratorConfig,
    Job,
    JobGraph,
    JobProfile,
    ModelType,
    ProfileDatabase,
    WorkloadGenerator,
    default_database,
    load_manifest,
)
from repro.perf import (
    Calibration,
    DEFAULT_CALIBRATION,
    InterferenceModel,
    PerformanceModel,
    Placement,
)
from repro.core import (
    PlacementEngine,
    PlacementSolution,
    UtilityParams,
    drb_map,
    fm_bipartition,
)
from repro.schedulers import (
    BestFitScheduler,
    FCFSScheduler,
    RandomScheduler,
    Scheduler,
    TopoAwareScheduler,
    make_scheduler,
)
from repro.sim import (
    ClusterState,
    MachineFailure,
    SimObserver,
    SimulationResult,
    Simulator,
    run_comparison,
    run_with_observers,
)

__version__ = "1.0.0"

__all__ = [
    "AllocationState",
    "BatchClass",
    "BestFitScheduler",
    "Calibration",
    "ClusterState",
    "DEFAULT_CALIBRATION",
    "FCFSScheduler",
    "GeneratorConfig",
    "InterferenceModel",
    "Job",
    "JobGraph",
    "JobProfile",
    "LinkSpec",
    "LinkType",
    "MachineFailure",
    "ModelType",
    "NodeKind",
    "PerformanceModel",
    "Placement",
    "PlacementEngine",
    "PlacementSolution",
    "ProfileDatabase",
    "RandomScheduler",
    "Scheduler",
    "SimObserver",
    "SimulationResult",
    "Simulator",
    "TopoAwareScheduler",
    "TopologyGraph",
    "UtilityParams",
    "WorkloadGenerator",
    "__version__",
    "cluster",
    "default_database",
    "dgx1",
    "drb_map",
    "fm_bipartition",
    "load_manifest",
    "machine",
    "make_scheduler",
    "power8_minsky",
    "power8_pcie_k80",
    "run_comparison",
    "run_with_observers",
]
