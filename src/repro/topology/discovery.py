"""Topology discovery interchange formats.

The paper's prototype discovers the hardware at startup by running
``nvidia-smi topo --matrix`` (GPU-to-GPU connectivity) and
``numactl --hardware`` (socket distances / CPU locality) and building
its physical graph from their output (Section 5.1).  We have no GPUs
here, so this module provides the *same code path* both ways:

* :func:`render_topo_matrix` / :func:`render_numactl_hardware` produce
  the textual output those tools would print for a given
  :class:`~repro.topology.graph.TopologyGraph`;
* :func:`parse_topo_matrix` / :func:`parse_numactl_hardware` and
  :func:`topology_from_matrix` rebuild a topology graph from such text.

Connection codes follow nvidia-smi conventions:

====  =====================================================
X     self
NV#   direct NVLink with # aggregated lanes
PIX   same PCIe switch
PHB   same socket, path through the host bridge / CPU
SYS   across sockets (traversing the SMP interconnect)
NET   across machines (traversing the network)
====  =====================================================
"""

from __future__ import annotations

import re

from repro.topology.graph import NodeKind, TopologyGraph, TopologyError
from repro.topology.links import DEFAULT_LEVEL_WEIGHTS, LinkSpec, LinkType


def _pair_code(topo: TopologyGraph, a: str, b: str) -> str:
    """nvidia-smi-style connection code for a GPU pair."""
    na, nb = topo.node(a), topo.node(b)
    try:
        edge = topo.edge(a, b)
    except TopologyError:
        edge = None
    if edge is not None and edge.spec.link_type is LinkType.NVLINK:
        return f"NV{edge.spec.lanes}"
    if na.machine != nb.machine:
        return "NET"
    if na.socket != nb.socket:
        return "SYS"
    # same socket: same switch -> PIX, otherwise through host bridge
    path = topo.shortest_path(a, b)
    kinds = {topo.node(p).kind for p in path[1:-1]}
    if kinds == {NodeKind.SWITCH}:
        return "PIX"
    return "PHB"


def render_topo_matrix(topo: TopologyGraph, machine: str | None = None) -> str:
    """Render the ``nvidia-smi topo --matrix`` table for one machine."""
    machines = topo.machines()
    if machine is None:
        if len(machines) != 1:
            raise TopologyError(
                "machine must be given explicitly for multi-machine topologies"
            )
        machine = machines[0]
    gpus = topo.gpus(machine=machine)
    if not gpus:
        raise TopologyError(f"machine {machine!r} has no GPUs")
    labels = [f"GPU{topo.gpu_index_of(g)}" for g in gpus]
    sockets = topo.sockets(machine=machine)
    cpu_ranges = {s: f"{8 * i}-{8 * (i + 1) - 1}" for i, s in enumerate(sockets)}

    rows = ["\t".join([""] + labels + ["CPU Affinity"])]
    for g, label in zip(gpus, labels):
        cells = [label]
        for h in gpus:
            cells.append("X" if g == h else _pair_code(topo, g, h))
        cells.append(cpu_ranges[topo.socket_of(g)])
        rows.append("\t".join(cells))
    return "\n".join(rows) + "\n"


def parse_topo_matrix(text: str) -> dict[tuple[int, int], str]:
    """Parse a topo matrix into ``{(i, j): code}`` with ``i != j``.

    Also returns CPU-affinity groupings encoded as ``(i, i) -> affinity``
    entries so socket membership can be reconstructed.
    """
    lines = [ln.rstrip() for ln in text.splitlines() if ln.strip()]
    if not lines:
        raise TopologyError("empty topo matrix")
    header = lines[0].split()
    gpu_labels = [h for h in header if h.startswith("GPU")]
    n = len(gpu_labels)
    if n == 0:
        raise TopologyError("topo matrix header has no GPU columns")
    out: dict[tuple[int, int], str] = {}
    for line in lines[1:]:
        cells = line.split()
        if not cells[0].startswith("GPU"):
            continue
        i = int(cells[0][3:])
        row = cells[1 : 1 + n]
        if len(row) != n:
            raise TopologyError(f"row GPU{i} has {len(row)} cells, expected {n}")
        for j, code in enumerate(row):
            if i == j:
                if code != "X":
                    raise TopologyError(f"diagonal of GPU{i} is {code!r}, expected X")
                continue
            out[(i, j)] = code
        if len(cells) > 1 + n:
            out[(i, i)] = cells[1 + n]
    return out


def topology_from_matrix(
    text: str,
    machine_id: str = "m0",
    *,
    cpu_link: LinkSpec | None = None,
) -> TopologyGraph:
    """Rebuild a single-machine topology graph from a topo matrix.

    Socket membership comes from the CPU-affinity column (falling back
    to SYS-relation clustering when absent); PIX pairs are grouped under
    per-socket switches; NV# codes become direct GPU-GPU NVLink edges.
    ``cpu_link`` is the GPU/switch uplink spec (the matrix cannot reveal
    it; defaults to PCIe).
    """
    cpu_link = cpu_link or LinkSpec.pcie()
    matrix = parse_topo_matrix(text)
    gpu_ids = sorted({i for (i, j) in matrix if i == j} | {i for (i, j) in matrix} | {j for (_, j) in matrix})
    n = max(gpu_ids) + 1 if gpu_ids else 0
    if n == 0:
        raise TopologyError("no GPUs in matrix")

    # --- socket grouping -------------------------------------------------
    affinities = {i: matrix.get((i, i)) for i in range(n)}
    if all(a is not None for a in affinities.values()):
        groups: dict[str, list[int]] = {}
        for i in range(n):
            groups.setdefault(str(affinities[i]), []).append(i)
        socket_members = [sorted(v) for _, v in sorted(groups.items(), key=lambda kv: kv[1])]
    else:
        # union-find over non-SYS relations
        parent = list(range(n))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for (i, j), code in matrix.items():
            if i != j and code not in ("SYS", "NET"):
                parent[find(i)] = find(j)
        comp: dict[int, list[int]] = {}
        for i in range(n):
            comp.setdefault(find(i), []).append(i)
        socket_members = [sorted(v) for v in comp.values()]
        socket_members.sort()

    topo = TopologyGraph(name=f"discovered[{machine_id}]")
    topo.add_node(machine_id, NodeKind.MACHINE)
    w_gpu = DEFAULT_LEVEL_WEIGHTS["gpu"]
    w_switch = DEFAULT_LEVEL_WEIGHTS["switch"]
    w_socket = DEFAULT_LEVEL_WEIGHTS["socket"]

    gpu_name = {i: f"{machine_id}/gpu{i}" for i in range(n)}
    for s, members in enumerate(socket_members):
        sock = f"{machine_id}/s{s}"
        topo.add_node(sock, NodeKind.SOCKET, machine=machine_id)
        topo.add_edge(sock, machine_id, w_socket, LinkSpec.xbus())
        # PIX pairs share a switch: union-find within the socket
        parent = {i: i for i in members}

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for i in members:
            for j in members:
                if i < j and matrix.get((i, j)) == "PIX":
                    parent[find(i)] = find(j)
        clusters: dict[int, list[int]] = {}
        for i in members:
            clusters.setdefault(find(i), []).append(i)
        sw_idx = 0
        for _, cluster_members in sorted(clusters.items(), key=lambda kv: min(kv[1])):
            if len(cluster_members) > 1:
                switch = f"{sock}/sw{sw_idx}"
                sw_idx += 1
                topo.add_node(switch, NodeKind.SWITCH, machine=machine_id, socket=sock)
                topo.add_edge(switch, sock, w_switch, LinkSpec.pcie())
                attach = switch
            else:
                attach = sock
            for i in sorted(cluster_members):
                topo.add_node(
                    gpu_name[i], NodeKind.GPU, machine=machine_id, socket=sock, gpu_index=i
                )
                topo.add_edge(gpu_name[i], attach, w_gpu, cpu_link)

    # --- NVLink edges ----------------------------------------------------
    for (i, j), code in matrix.items():
        if i < j and code.startswith("NV"):
            lanes = int(code[2:]) if code[2:] else 1
            topo.add_edge(gpu_name[i], gpu_name[j], w_gpu, LinkSpec.nvlink(lanes))
    topo.validate()
    return topo


# ---------------------------------------------------------------------------
# numactl --hardware
# ---------------------------------------------------------------------------

def render_numactl_hardware(
    topo: TopologyGraph,
    machine: str | None = None,
    *,
    cores_per_socket: int = 8,
    mem_mb_per_socket: int = 262144,
) -> str:
    """Render ``numactl --hardware``-style output for one machine."""
    machines = topo.machines()
    if machine is None:
        if len(machines) != 1:
            raise TopologyError(
                "machine must be given explicitly for multi-machine topologies"
            )
        machine = machines[0]
    sockets = topo.sockets(machine=machine)
    n = len(sockets)
    lines = [f"available: {n} nodes (0-{n - 1})"]
    for i in range(n):
        cpus = " ".join(str(c) for c in range(i * cores_per_socket, (i + 1) * cores_per_socket))
        lines.append(f"node {i} cpus: {cpus}")
        lines.append(f"node {i} size: {mem_mb_per_socket} MB")
    lines.append("node distances:")
    lines.append("node " + "  ".join(f"{i:>3}" for i in range(n)))
    for i, si in enumerate(sockets):
        row = []
        for j, sj in enumerate(sockets):
            if i == j:
                row.append(10)
            else:
                # numactl convention: local=10, remote scaled by distance
                row.append(int(10 + topo.distance(si, sj)))
        lines.append(f"{i:>4}: " + "  ".join(f"{d:>3}" for d in row))
    return "\n".join(lines) + "\n"


def parse_numactl_hardware(text: str) -> dict:
    """Parse numactl output into node count, cpus and the distance matrix."""
    nodes = 0
    cpus: dict[int, list[int]] = {}
    distances: list[list[int]] = []
    in_dist = False
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        m = re.match(r"available:\s+(\d+)\s+nodes", line)
        if m:
            nodes = int(m.group(1))
            continue
        m = re.match(r"node\s+(\d+)\s+cpus:\s*(.*)", line)
        if m:
            cpus[int(m.group(1))] = [int(c) for c in m.group(2).split()]
            continue
        if line.startswith("node distances"):
            in_dist = True
            continue
        if in_dist:
            m = re.match(r"(\d+):\s*(.*)", line)
            if m:
                distances.append([int(d) for d in m.group(2).split()])
    if nodes == 0:
        raise TopologyError("could not parse numactl output")
    if distances and (len(distances) != nodes or any(len(r) != nodes for r in distances)):
        raise TopologyError("numactl distance matrix shape mismatch")
    return {"nodes": nodes, "cpus": cpus, "distances": distances}
