"""Hierarchical physical topology graph (paper Section 4.1.2, Figure 7).

A :class:`TopologyGraph` holds the levels network -> machine -> socket
-> (optional switches) -> GPU as vertices, plus direct GPU-to-GPU edges
for NVLink connections.  Every edge carries

* ``weight`` -- the qualitative distance used by the communication-cost
  metric (Eq. 3); shortest-path sums over these weights define how
  "far" two GPUs are, and
* ``spec`` -- a :class:`~repro.topology.links.LinkSpec` with the link
  technology and bandwidth, used by the performance/interference models.

The graph is undirected.  Shortest-path distances and widest-path
(bottleneck-bandwidth) queries are computed with Dijkstra variants and
cached per source; any mutation invalidates the caches.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from repro.topology.links import LinkSpec, LinkType


class TopologyError(ValueError):
    """Raised for malformed topology construction or queries."""


#: Topologies with more GPUs than this never materialise the dense
#: all-pairs GPU distance matrix (memory grows as ``n_gpus**2``) and
#: keep the per-source Dijkstra cache as their only fast path.
MATRIX_MAX_GPUS = 2048

#: bound on cached *unscoped* per-source Dijkstra results.  Above the
#: matrix cap every cross-machine distance query falls back to these,
#: and each one holds a distance for every node in the graph — on a
#: 1k-machine fleet that is ~9k entries per source, so caching one per
#: GPU would grow without limit.  Eviction is LRU and only ever forces
#: a recompute, never a different answer.
DIST_UNSCOPED_CACHE_MAX = 128


class NodeKind(enum.Enum):
    NETWORK = "network"
    MACHINE = "machine"
    SOCKET = "socket"
    SWITCH = "switch"
    GPU = "gpu"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Node:
    """A topology vertex.

    ``machine`` and ``socket`` record the enclosing components (``None``
    above that level); ``gpu_index`` is the machine-local GPU id used by
    enforcement (``CUDA_VISIBLE_DEVICES`` ordering).
    """

    name: str
    kind: NodeKind
    machine: str | None = None
    socket: str | None = None
    gpu_index: int | None = None


@dataclass(frozen=True)
class Edge:
    """An undirected topology edge between ``u`` and ``v``."""

    u: str
    v: str
    weight: float
    spec: LinkSpec

    @property
    def key(self) -> tuple[str, str]:
        """Canonical (sorted) endpoint pair identifying this edge."""
        return (self.u, self.v) if self.u <= self.v else (self.v, self.u)


@dataclass
class _Caches:
    dist: dict[tuple[str, str | None], dict[str, float]] = field(default_factory=dict)
    widest: dict[tuple[str, str | None], dict[str, float]] = field(default_factory=dict)
    paths: dict[tuple[str, str], tuple[str, ...]] = field(default_factory=dict)
    machines: list[str] | None = None
    gpu_lists: dict[tuple[str | None, str | None], list[str]] = field(
        default_factory=dict
    )
    socket_lists: dict[str | None, list[str]] = field(default_factory=dict)
    machine_map: dict[str, str] = field(default_factory=dict)
    socket_map: dict[str, str] = field(default_factory=dict)
    #: all-pairs unscoped GPU shortest-path distances (Eq. 3's
    #: precomputed form): row index per GPU name plus per-GPU row lists
    #: for fast scalar access.  ``gpu_index is None`` = not built yet;
    #: an empty index = matrix unavailable (size cap or disconnected
    #: GPUs) and callers fall through to the per-source Dijkstra path.
    gpu_index: dict[str, int] | None = None
    gpu_rows: list[list[float]] | None = None
    #: LRU order of unscoped entries in ``dist`` (see
    #: :data:`DIST_UNSCOPED_CACHE_MAX`); values are unused.
    dist_unscoped_lru: "OrderedDict[tuple[str, str | None], None]" = field(
        default_factory=OrderedDict
    )
    #: representative machine-to-machine distances and per-anchor
    #: proximity rankings (diagnostics / provenance enrichment).
    machine_dist: dict[tuple[str, str], float] = field(default_factory=dict)
    proximity: dict[str, tuple[str, ...]] = field(default_factory=dict)

    def clear(self) -> None:
        self.dist.clear()
        self.widest.clear()
        self.paths.clear()
        self.machines = None
        self.gpu_lists.clear()
        self.socket_lists.clear()
        self.machine_map.clear()
        self.socket_map.clear()
        self.gpu_index = None
        self.gpu_rows = None
        self.dist_unscoped_lru.clear()
        self.machine_dist.clear()
        self.proximity.clear()


class TopologyGraph:
    """Weighted undirected graph over topology components."""

    def __init__(self, name: str = "topology") -> None:
        self.name = name
        self._nodes: dict[str, Node] = {}
        self._adj: dict[str, dict[str, Edge]] = {}
        self._caches = _Caches()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        name: str,
        kind: NodeKind,
        *,
        machine: str | None = None,
        socket: str | None = None,
        gpu_index: int | None = None,
    ) -> Node:
        if name in self._nodes:
            raise TopologyError(f"duplicate node {name!r}")
        if kind is NodeKind.GPU and gpu_index is None:
            raise TopologyError(f"GPU node {name!r} requires gpu_index")
        node = Node(name, kind, machine=machine, socket=socket, gpu_index=gpu_index)
        self._nodes[name] = node
        self._adj[name] = {}
        self._caches.clear()
        return node

    def add_edge(self, u: str, v: str, weight: float, spec: LinkSpec) -> Edge:
        if u == v:
            raise TopologyError(f"self-loop on {u!r}")
        for endpoint in (u, v):
            if endpoint not in self._nodes:
                raise TopologyError(f"unknown node {endpoint!r}")
        if v in self._adj[u]:
            raise TopologyError(f"duplicate edge {u!r} -- {v!r}")
        if weight <= 0:
            raise TopologyError(f"edge weight must be positive, got {weight}")
        edge = Edge(u, v, float(weight), spec)
        self._adj[u][v] = edge
        self._adj[v][u] = edge
        self._caches.clear()
        return edge

    def merge(self, other: "TopologyGraph") -> None:
        """Copy all nodes and edges of ``other`` into this graph."""
        for node in other._nodes.values():
            if node.name in self._nodes:
                raise TopologyError(f"node {node.name!r} exists in both graphs")
            self._nodes[node.name] = node
            self._adj[node.name] = {}
        for edge in other.edges():
            self._adj[edge.u][edge.v] = edge
            self._adj[edge.v][edge.u] = edge
        self._caches.clear()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise TopologyError(f"unknown node {name!r}") from None

    def nodes(self, kind: NodeKind | None = None) -> list[Node]:
        if kind is None:
            return list(self._nodes.values())
        return [n for n in self._nodes.values() if n.kind is kind]

    def edges(self) -> Iterator[Edge]:
        seen: set[tuple[str, str]] = set()
        for adj in self._adj.values():
            for edge in adj.values():
                if edge.key not in seen:
                    seen.add(edge.key)
                    yield edge

    def neighbors(self, name: str) -> list[str]:
        self.node(name)
        return list(self._adj[name])

    def edge(self, u: str, v: str) -> Edge:
        self.node(u)
        try:
            return self._adj[u][v]
        except KeyError:
            raise TopologyError(f"no edge {u!r} -- {v!r}") from None

    def gpus(self, machine: str | None = None, socket: str | None = None) -> list[str]:
        """GPU node names, sorted by (machine, gpu_index).  Cached.

        Single-filter misses (one machine, or one socket) fill the
        cache for *every* machine/socket in one pass over the global
        GPU list instead of rescanning all nodes per component — on a
        1k-machine fleet the per-component scans would otherwise
        dominate first-touch scheduling rounds.  Grouping the global
        (machine, gpu_index)-sorted list preserves each group's order,
        so the lists are identical to a filtered scan.
        """
        key = (machine, socket)
        cached = self._caches.gpu_lists.get(key)
        if cached is not None:
            return list(cached)
        if (machine is None) != (socket is None):
            groups: dict[tuple[str | None, str | None], list[str]] = {}
            field_is_machine = socket is None
            for name in self.gpus():
                node = self._nodes[name]
                group_key = (
                    (node.machine, None) if field_is_machine else (None, node.socket)
                )
                groups.setdefault(group_key, []).append(name)
            for group_key, names in groups.items():
                self._caches.gpu_lists.setdefault(group_key, names)
            return list(self._caches.gpu_lists.setdefault(key, []))
        out = [
            n
            for n in self._nodes.values()
            if n.kind is NodeKind.GPU
            and (machine is None or n.machine == machine)
            and (socket is None or n.socket == socket)
        ]
        out.sort(key=lambda n: (n.machine or "", n.gpu_index or 0))
        names = [n.name for n in out]
        self._caches.gpu_lists[key] = names
        return list(names)

    def machines(self) -> list[str]:
        if self._caches.machines is None:
            self._caches.machines = sorted(
                n.name for n in self._nodes.values() if n.kind is NodeKind.MACHINE
            )
        return list(self._caches.machines)

    def sockets(self, machine: str | None = None) -> list[str]:
        """Socket node names, sorted.  Cached like :meth:`gpus`: a
        per-machine miss groups the global sorted list in one pass and
        fills every machine's entry, so sweeps that ask machine by
        machine (the time-series sampler, Eq. 5 scoring) never rescan
        the node table per component.  Grouping a sorted list keeps
        each machine's sockets sorted."""
        cached = self._caches.socket_lists.get(machine)
        if cached is not None:
            return list(cached)
        if machine is not None:
            groups: dict[str | None, list[str]] = {}
            for name in self.sockets():
                groups.setdefault(self._nodes[name].machine, []).append(name)
            for group_machine, names in groups.items():
                self._caches.socket_lists.setdefault(group_machine, names)
            return list(self._caches.socket_lists.setdefault(machine, []))
        names = sorted(
            n.name
            for n in self._nodes.values()
            if n.kind is NodeKind.SOCKET
        )
        self._caches.socket_lists[None] = names
        return list(names)

    def machine_of(self, name: str) -> str:
        cached = self._caches.machine_map.get(name)
        if cached is not None:
            return cached
        node = self.node(name)
        if node.kind is NodeKind.MACHINE:
            result = node.name
        elif node.machine is None:
            raise TopologyError(f"node {name!r} has no machine")
        else:
            result = node.machine
        self._caches.machine_map[name] = result
        return result

    def socket_of(self, name: str) -> str:
        cached = self._caches.socket_map.get(name)
        if cached is not None:
            return cached
        node = self.node(name)
        if node.kind is NodeKind.SOCKET:
            result = node.name
        elif node.socket is None:
            raise TopologyError(f"node {name!r} has no socket")
        else:
            result = node.socket
        self._caches.socket_map[name] = result
        return result

    def gpu_index_of(self, name: str) -> int:
        node = self.node(name)
        if node.kind is not NodeKind.GPU or node.gpu_index is None:
            raise TopologyError(f"node {name!r} is not a GPU")
        return node.gpu_index

    # ------------------------------------------------------------------
    # shortest paths / widest paths
    # ------------------------------------------------------------------
    def _dijkstra(self, source: str, scope_machine: str | None = None) -> dict[str, float]:
        """Single-source shortest paths, optionally restricted to one
        machine's component (hierarchical weights guarantee intra-machine
        paths never detour through the network, so the scoped search is
        exact for same-machine queries and much cheaper on clusters).

        GPU nodes never *transit* traffic: a path may start or end at a
        GPU but cannot route through one (P100-class NVLink does not
        relay; non-adjacent GPU pairs go through switches/sockets, which
        is exactly what ``nvidia-smi topo`` reports as PIX/PHB/SYS).
        """
        key = (source, scope_machine)
        cached = self._caches.dist.get(key)
        if cached is not None:
            if scope_machine is None and key in self._caches.dist_unscoped_lru:
                self._caches.dist_unscoped_lru.move_to_end(key)
            return cached
        self.node(source)
        dist: dict[str, float] = {source: 0.0}
        heap: list[tuple[float, str]] = [(0.0, source)]
        done: set[str] = set()
        while heap:
            d, u = heapq.heappop(heap)
            if u in done:
                continue
            done.add(u)
            if u != source and self._nodes[u].kind is NodeKind.GPU:
                continue  # GPUs are endpoints, never relays
            for v, edge in self._adj[u].items():
                if scope_machine is not None:
                    node_v = self._nodes[v]
                    if node_v.machine != scope_machine and node_v.kind is not NodeKind.MACHINE:
                        continue
                    if node_v.kind is NodeKind.MACHINE and v != scope_machine:
                        continue
                nd = d + edge.weight
                if nd < dist.get(v, float("inf")):
                    dist[v] = nd
                    heapq.heappush(heap, (nd, v))
        self._caches.dist[key] = dist
        if scope_machine is None:
            # unscoped rows are graph-sized; keep only the hottest few
            # (see DIST_UNSCOPED_CACHE_MAX) so above-matrix-cap fleets
            # do not accumulate one full-graph dict per GPU.
            lru = self._caches.dist_unscoped_lru
            lru[key] = None
            lru.move_to_end(key)
            while len(lru) > DIST_UNSCOPED_CACHE_MAX:
                old, _ = lru.popitem(last=False)
                self._caches.dist.pop(old, None)
        return dist

    def _scope_for(self, u: str, v: str) -> str | None:
        """Common machine of two nodes, or None when they differ."""
        mu = self._nodes[u].machine or (
            u if self._nodes[u].kind is NodeKind.MACHINE else None
        )
        mv = self._nodes[v].machine or (
            v if self._nodes[v].kind is NodeKind.MACHINE else None
        )
        return mu if (mu is not None and mu == mv) else None

    def _gpu_matrix_index(self) -> dict[str, int]:
        """Row index of the all-pairs GPU distance matrix, building it
        lazily on first use.

        The matrix stores *unscoped* Dijkstra distances — the exact
        values :meth:`distance` uses for cross-machine pairs and
        :meth:`pairwise_distance_sum` uses for machine-spanning GPU
        sets — so serving those queries from it is bit-identical to the
        per-call search.  An empty index means the matrix is
        unavailable (more than :data:`MATRIX_MAX_GPUS` GPUs, or a
        disconnected GPU pair) and callers must fall back.
        """
        index = self._caches.gpu_index
        if index is not None:
            return index
        order = self.gpus()
        caches = self._caches
        if not order or len(order) > MATRIX_MAX_GPUS:
            caches.gpu_index = {}
            return caches.gpu_index
        index = {name: i for i, name in enumerate(order)}
        rows: list[list[float]] = []
        for u in order:
            # keep build memory bounded: full-graph rows we computed
            # only for the matrix are dropped from the Dijkstra cache
            fresh = (u, None) not in caches.dist
            dist = self._dijkstra(u, None)
            row = [0.0] * len(order)
            for j, v in enumerate(order):
                if v == u:
                    continue
                d = dist.get(v)
                if d is None:
                    caches.gpu_index = {}
                    return caches.gpu_index
                row[j] = d
            rows.append(row)
            if fresh:
                caches.dist.pop((u, None), None)
                caches.dist_unscoped_lru.pop((u, None), None)
        caches.gpu_index = index
        caches.gpu_rows = rows
        return index

    def distance(self, u: str, v: str) -> float:
        """Shortest-path distance (sum of qualitative edge weights)."""
        index = self._gpu_matrix_index()
        if index:
            i = index.get(u)
            j = index.get(v)
            if i is not None and j is not None:
                if i == j:
                    return 0.0
                # matrix rows are unscoped; same-machine queries keep
                # the scoped search whose per-source cache is hot anyway
                if self._nodes[u].machine != self._nodes[v].machine:
                    return self._caches.gpu_rows[i][j]
        self.node(u)
        self.node(v)
        if u == v:
            return 0.0
        dist = self._dijkstra(u, self._scope_for(u, v))
        try:
            return dist[v]
        except KeyError:
            raise TopologyError(f"{u!r} and {v!r} are disconnected") from None

    def shortest_path(self, u: str, v: str) -> tuple[str, ...]:
        """One shortest path from ``u`` to ``v`` as a node-name tuple."""
        self.node(u)
        self.node(v)
        cached = self._caches.paths.get((u, v))
        if cached is not None:
            return cached
        if u == v:
            return (u,)
        scope = self._scope_for(u, v)
        dist: dict[str, float] = {u: 0.0}
        prev: dict[str, str] = {}
        heap: list[tuple[float, str]] = [(0.0, u)]
        done: set[str] = set()
        while heap:
            d, a = heapq.heappop(heap)
            if a in done:
                continue
            if a == v:
                break
            done.add(a)
            if a != u and self._nodes[a].kind is NodeKind.GPU:
                continue  # GPUs are endpoints, never relays
            for b, edge in self._adj[a].items():
                if scope is not None:
                    node_b = self._nodes[b]
                    if node_b.machine != scope and not (
                        node_b.kind is NodeKind.MACHINE and b == scope
                    ):
                        continue
                nd = d + edge.weight
                if nd < dist.get(b, float("inf")):
                    dist[b] = nd
                    prev[b] = a
                    heapq.heappush(heap, (nd, b))
        if v not in dist:
            raise TopologyError(f"{u!r} and {v!r} are disconnected")
        path = [v]
        while path[-1] != u:
            path.append(prev[path[-1]])
        path.reverse()
        result = tuple(path)
        self._caches.paths[(u, v)] = result
        self._caches.paths[(v, u)] = tuple(reversed(result))
        return result

    def path_edges(self, u: str, v: str) -> list[Edge]:
        """Edges along one shortest path from ``u`` to ``v``."""
        path = self.shortest_path(u, v)
        return [self.edge(a, b) for a, b in itertools.pairwise(path)]

    def bottleneck_bandwidth(self, u: str, v: str) -> float:
        """Maximum-bottleneck ("widest path") bandwidth between two nodes.

        This is the effective peer-to-peer bandwidth the performance
        model assumes for GPU pairs: the path that maximises the minimum
        link bandwidth along it.  Direct NVLink neighbours therefore see
        the NVLink bandwidth, while cross-socket pairs are limited by
        the system bus.
        """
        self.node(u)
        self.node(v)
        if u == v:
            return float("inf")
        scope = self._scope_for(u, v)
        key = (u, scope)
        cached = self._caches.widest.get(key)
        if cached is None:
            cached = self._widest_from(u, scope)
            self._caches.widest[key] = cached
        try:
            return cached[v]
        except KeyError:
            raise TopologyError(f"{u!r} and {v!r} are disconnected") from None

    def _widest_from(self, source: str, scope_machine: str | None = None) -> dict[str, float]:
        self.node(source)
        width: dict[str, float] = {source: float("inf")}
        # max-heap via negation
        heap: list[tuple[float, str]] = [(-float("inf"), source)]
        done: set[str] = set()
        while heap:
            w, u = heapq.heappop(heap)
            w = -w
            if u in done:
                continue
            done.add(u)
            if u != source and self._nodes[u].kind is NodeKind.GPU:
                continue  # GPUs are endpoints, never relays
            for v, edge in self._adj[u].items():
                if scope_machine is not None:
                    node_v = self._nodes[v]
                    if node_v.machine != scope_machine and not (
                        node_v.kind is NodeKind.MACHINE and v == scope_machine
                    ):
                        continue
                nw = min(w, edge.spec.bandwidth_gbs)
                if nw > width.get(v, 0.0):
                    width[v] = nw
                    heapq.heappush(heap, (-nw, v))
        return width

    def distance_matrix(self, names: Iterable[str] | None = None) -> tuple[list[str], np.ndarray]:
        """All-pairs shortest-path distances for ``names`` (default: GPUs).

        Returns the node order and a symmetric float matrix.
        """
        order = list(names) if names is not None else self.gpus()
        index = self._gpu_matrix_index()
        if index and all(name in index for name in order):
            rows = self._caches.gpu_rows
            ids = [index[name] for name in order]
            return order, np.array(
                [[rows[i][j] for j in ids] for i in ids], dtype=float
            )
        n = len(order)
        mat = np.zeros((n, n), dtype=float)
        for i, u in enumerate(order):
            dist = self._dijkstra(u)
            for j, v in enumerate(order):
                if i != j:
                    try:
                        mat[i, j] = dist[v]
                    except KeyError:
                        raise TopologyError(f"{u!r} and {v!r} are disconnected") from None
        return order, mat

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------
    def pairwise_distance_sum(self, names: Iterable[str]) -> float:
        """Sum of pairwise shortest-path distances (Eq. 3's ``t``)."""
        names = list(names)
        if len(names) < 2:
            return 0.0
        machines = {self._nodes[n].machine for n in names}
        scope = machines.pop() if len(machines) == 1 else None
        if scope is None:
            # machine-spanning sets use unscoped distances — exactly
            # what the matrix stores.  Same pair order and accumulation
            # as the Dijkstra loop below, so the sum is bit-identical.
            index = self._gpu_matrix_index()
            if index:
                rows = self._caches.gpu_rows
                ids = [index.get(n) for n in names]
                if None not in ids:
                    total = 0.0
                    for a, i in enumerate(ids):
                        row = rows[i]
                        for j in ids[a + 1 :]:
                            total += row[j]
                    return total
        total = 0.0
        for i, u in enumerate(names):
            dist = self._dijkstra(u, scope)
            for v in names[i + 1 :]:
                try:
                    total += dist[v]
                except KeyError:
                    raise TopologyError(
                        f"{u!r} and {v!r} are disconnected"
                    ) from None
        return total

    def machine_distance(self, a: str, b: str) -> float:
        """Representative inter-machine distance for proximity ranking.

        The unscoped shortest-path distance between the machines' first
        GPUs (machines are internally symmetric in the paper's
        hierarchies, so any representative pair gives the same
        cross-machine ranking); machines without GPUs fall back to the
        machine nodes themselves.  Works identically above and below
        the dense-matrix cap — above it the per-source Dijkstra fallback
        serves the same values the matrix would have stored.  Cached per
        unordered pair.  Diagnostics/provenance only: placement
        tie-breaks stay on (capacity, name) so results are unaffected.
        """
        if a == b:
            return 0.0
        key = (a, b) if a <= b else (b, a)
        cached = self._caches.machine_dist.get(key)
        if cached is not None:
            return cached
        gpus_a = self.gpus(machine=a)
        gpus_b = self.gpus(machine=b)
        if gpus_a and gpus_b:
            d = self.distance(gpus_a[0], gpus_b[0])
        else:
            d = self.distance(a, b)
        self._caches.machine_dist[key] = d
        return d

    def machines_by_proximity(self, anchor: str) -> tuple[str, ...]:
        """All other machines sorted by (distance from ``anchor``, name).

        One unscoped Dijkstra from the anchor's representative GPU on
        first use, then cached; used to annotate placement provenance
        with how topologically far each candidate sits from an anchor
        host.
        """
        cached = self._caches.proximity.get(anchor)
        if cached is not None:
            return cached
        self.node(anchor)
        ranked = sorted(
            (m for m in self.machines() if m != anchor),
            key=lambda m: (self.machine_distance(anchor, m), m),
        )
        result = tuple(ranked)
        self._caches.proximity[anchor] = result
        return result

    def diameter(self, names: Iterable[str] | None = None) -> float:
        """Largest pairwise distance among ``names`` (default: GPUs)."""
        order = list(names) if names is not None else self.gpus()
        worst = 0.0
        for i, u in enumerate(order):
            dist = self._dijkstra(u)
            for v in order[i + 1 :]:
                worst = max(worst, dist[v])
        return worst

    # ------------------------------------------------------------------
    # validation / export
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raise :class:`TopologyError` if broken.

        Invariants: at least one GPU; every GPU names an existing machine
        and socket; the graph is connected; GPU indices are unique per
        machine.
        """
        gpus = self.nodes(NodeKind.GPU)
        if not gpus:
            raise TopologyError("topology has no GPUs")
        seen: set[tuple[str | None, int | None]] = set()
        for gpu in gpus:
            if gpu.machine is None or gpu.machine not in self._nodes:
                raise TopologyError(f"GPU {gpu.name!r} has unknown machine {gpu.machine!r}")
            if gpu.socket is None or gpu.socket not in self._nodes:
                raise TopologyError(f"GPU {gpu.name!r} has unknown socket {gpu.socket!r}")
            key = (gpu.machine, gpu.gpu_index)
            if key in seen:
                raise TopologyError(
                    f"duplicate gpu_index {gpu.gpu_index} on machine {gpu.machine!r}"
                )
            seen.add(key)
        # connectivity: plain BFS over the raw adjacency (the routing
        # rule that GPUs never relay does not apply here -- a switch
        # reachable only through its GPUs is still physically attached)
        start = next(iter(self._nodes))
        reached = {start}
        frontier = [start]
        while frontier:
            u = frontier.pop()
            for v in self._adj[u]:
                if v not in reached:
                    reached.add(v)
                    frontier.append(v)
        if len(reached) != len(self._nodes):
            missing = sorted(set(self._nodes) - reached)
            raise TopologyError(f"disconnected nodes: {missing[:5]}")

    def p2p_connected(self, gpu_a: str, gpu_b: str) -> bool:
        """True when two GPUs can exchange peer-to-peer.

        P2P works along direct NVLink edges or across shared switches;
        once the shortest path climbs to a socket (host bridge), a
        machine or the network, traffic must be staged through host
        memory.
        """
        if gpu_a == gpu_b:
            return True
        path = self.shortest_path(gpu_a, gpu_b)
        return all(
            self.node(name).kind in (NodeKind.GPU, NodeKind.SWITCH)
            for name in path[1:-1]
        )

    def p2p_island_sizes(self, machine: str | None = None) -> list[int]:
        """Sizes of maximal GPU groups with all-pairs P2P connectivity.

        Used to decide whether a job's P2P requirement is attainable at
        all on this hardware (TOPO-AWARE-P must not postpone forever
        waiting for an allocation the machine cannot provide).
        Computed greedily over P2P adjacency cliques per socket/switch
        group; exact for the hierarchical machines modelled here.
        """
        sizes: list[int] = []
        for sock in self.sockets(machine=machine):
            gpus = self.gpus(socket=sock)
            # group GPUs by mutual P2P reachability within the socket
            remaining = set(gpus)
            while remaining:
                seed = min(remaining)
                island = {seed}
                for g in sorted(remaining - {seed}):
                    if all(self.p2p_connected(g, member) for member in island):
                        island.add(g)
                sizes.append(len(island))
                remaining -= island
        return sorted(sizes, reverse=True)

    def nvlink_pairs(self) -> list[tuple[str, str]]:
        """GPU pairs connected by a *direct* NVLink edge (P2P capable)."""
        pairs = []
        for edge in self.edges():
            if edge.spec.link_type is LinkType.NVLINK:
                nu, nv = self.node(edge.u), self.node(edge.v)
                if nu.kind is NodeKind.GPU and nv.kind is NodeKind.GPU:
                    pairs.append(edge.key)
        return sorted(pairs)

    def to_networkx(self):
        """Export to a :mod:`networkx` graph (for analysis/visualisation)."""
        import networkx as nx

        g = nx.Graph(name=self.name)
        for node in self._nodes.values():
            g.add_node(
                node.name,
                kind=node.kind.value,
                machine=node.machine,
                socket=node.socket,
                gpu_index=node.gpu_index,
            )
        for edge in self.edges():
            g.add_edge(
                edge.u,
                edge.v,
                weight=edge.weight,
                link_type=edge.spec.link_type.value,
                bandwidth_gbs=edge.spec.bandwidth_gbs,
            )
        return g

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TopologyGraph({self.name!r}, nodes={len(self._nodes)}, "
            f"gpus={len(self.gpus())}, machines={len(self.machines())})"
        )
