"""Link technologies and their qualitative/quantitative properties.

The paper (Section 4.1.2, Figure 7) models topology edges with two
attributes:

* a *qualitative distance weight*: edges closer to the GPU leaves get
  small weights (1), edges at higher hierarchy levels get larger weights
  (PCIe switch ~10, socket ~20, machine/network ~100).  Only the
  ordering matters; shortest-path sums over these weights are the
  communication-cost metric of Eq. 3.
* a *bandwidth* (GB/s, unidirectional) used by the performance and
  interference models.

The numbers below follow the hardware described in the paper:
NVLink 1.0 lanes are 20 GB/s unidirectional (the Power8 "Minsky"
machine aggregates two lanes per connection for 40 GB/s), PCIe gen3
x16 is ~16 GB/s, and the Power8 inter-socket X-bus (the "system bus",
QPI-equivalent) is ~38.4 GB/s.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

#: Unidirectional bandwidth of a single NVLink 1.0 lane (GB/s).
NVLINK_LANE_BW = 20.0

#: Unidirectional bandwidth of a PCIe gen3 x16 link (GB/s).
PCIE3_X16_BW = 16.0

#: Unidirectional bandwidth of the Power8 inter-socket X-bus (GB/s).
XBUS_BW = 38.4

#: Bandwidth assumed for the cluster network level (GB/s); roughly a
#: 100 Gb/s fabric.  Only relevant for jobs spanning machines.
NETWORK_BW = 12.5

#: Host DRAM bandwidth per socket (GB/s); used by the DRAM-contention
#: part of the interference model (the paper measures this with
#: Perfmon2 counters on Power8).
DRAM_BW = 115.0


class LinkType(enum.Enum):
    """Technology of a topology edge."""

    NVLINK = "nvlink"
    PCIE = "pcie"
    XBUS = "xbus"  # inter-socket system bus (QPI / Power8 X-bus)
    NETWORK = "network"
    ONBOARD = "onboard"  # logical parent/child edge inside one component

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class LinkSpec:
    """A concrete link: technology, lane count and derived bandwidth.

    ``bandwidth_gbs`` is the *unidirectional* aggregate bandwidth of the
    link.  ``lanes`` is retained so NVLink dual-lane connections (Power8)
    can be distinguished from single-lane ones (DGX-1 cube mesh).
    """

    link_type: LinkType
    lanes: int = 1
    bandwidth_gbs: float = 0.0

    def __post_init__(self) -> None:
        if self.lanes < 1:
            raise ValueError(f"lanes must be >= 1, got {self.lanes}")
        if self.bandwidth_gbs < 0:
            raise ValueError("bandwidth_gbs must be non-negative")
        if self.bandwidth_gbs == 0.0:
            object.__setattr__(
                self, "bandwidth_gbs", _default_bandwidth(self.link_type) * self.lanes
            )

    @staticmethod
    def nvlink(lanes: int = 1) -> "LinkSpec":
        return LinkSpec(LinkType.NVLINK, lanes=lanes)

    @staticmethod
    def pcie() -> "LinkSpec":
        return LinkSpec(LinkType.PCIE)

    @staticmethod
    def xbus() -> "LinkSpec":
        return LinkSpec(LinkType.XBUS)

    @staticmethod
    def network() -> "LinkSpec":
        return LinkSpec(LinkType.NETWORK)

    @staticmethod
    def onboard() -> "LinkSpec":
        # Parent/child edges inside a component are not a bandwidth
        # bottleneck by themselves; give them effectively-unconstrained
        # bandwidth so only real buses constrain the perf model.
        return LinkSpec(LinkType.ONBOARD, bandwidth_gbs=1e9)


def _default_bandwidth(link_type: LinkType) -> float:
    return {
        LinkType.NVLINK: NVLINK_LANE_BW,
        LinkType.PCIE: PCIE3_X16_BW,
        LinkType.XBUS: XBUS_BW,
        LinkType.NETWORK: NETWORK_BW,
        LinkType.ONBOARD: 1e9,
    }[link_type]


#: Default qualitative distance weights per hierarchy level, following
#: Figure 7: "each level right after the GPU level has weight 1, whilst
#: at higher levels, such as the socket level, the edges have weight 20".
#: The absolute values are arbitrary; only larger-at-higher-levels is
#: required by the model.
DEFAULT_LEVEL_WEIGHTS: dict[str, float] = {
    "gpu": 1.0,  # GPU <-> its direct parent (switch or socket), and
    # GPU <-> GPU direct NVLink edges
    "switch": 10.0,  # PCIe/NVLink switch <-> socket
    "socket": 20.0,  # socket <-> machine
    "machine": 100.0,  # machine <-> network
}
