"""Physical GPU/CPU topology modelling.

This subpackage implements the "physical system topology graph" of
Section 4.1.2 of the paper: a hierarchical weighted graph whose levels
are network -> machine -> socket -> (optional switches) -> GPU, with
extra direct GPU-to-GPU edges for NVLink connections.

The public entry points are the machine builders
(:func:`power8_minsky`, :func:`dgx1`, :func:`power8_pcie_k80`),
the generic :func:`machine` / :func:`cluster` constructors, the
:class:`TopologyGraph` container, and the discovery helpers that
round-trip an ``nvidia-smi topo --matrix``-style description.
"""

from repro.topology.links import (
    LinkSpec,
    LinkType,
    DEFAULT_LEVEL_WEIGHTS,
    NVLINK_LANE_BW,
    PCIE3_X16_BW,
)
from repro.topology.graph import NodeKind, TopologyGraph, TopologyError
from repro.topology.builders import (
    cluster,
    dgx1,
    dgx2,
    machine,
    power8_minsky,
    power8_pcie_k80,
    power9_ac922,
)
from repro.topology.discovery import (
    parse_numactl_hardware,
    parse_topo_matrix,
    render_numactl_hardware,
    render_topo_matrix,
    topology_from_matrix,
)
from repro.topology.allocation import AllocationState, AllocationError

__all__ = [
    "AllocationError",
    "AllocationState",
    "DEFAULT_LEVEL_WEIGHTS",
    "LinkSpec",
    "LinkType",
    "NodeKind",
    "NVLINK_LANE_BW",
    "PCIE3_X16_BW",
    "TopologyError",
    "TopologyGraph",
    "cluster",
    "dgx1",
    "dgx2",
    "machine",
    "parse_numactl_hardware",
    "parse_topo_matrix",
    "power8_minsky",
    "power8_pcie_k80",
    "power9_ac922",
    "render_numactl_hardware",
    "render_topo_matrix",
    "topology_from_matrix",
]
