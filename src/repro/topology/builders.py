"""Constructors for the machine topologies used in the paper.

* :func:`power8_minsky` -- IBM Power8 S822LC "Minsky": 2 sockets,
  2 Tesla P100 per socket, dual-lane NVLink GPU-GPU and CPU-GPU
  intra-socket (Figure 1 left / Figure 7 left).  This is the testbed of
  all prototype experiments.
* :func:`dgx1` -- NVIDIA DGX-1: 8 GPUs in a hybrid cube-mesh of
  single-lane NVLinks, each GPU also behind a PCIe switch (Figure 1
  right / Figure 7 right).
* :func:`power8_pcie_k80` -- the PCIe-gen3/K80 variant used for the
  "same experiments on a PCIe machine" comparison in Section 3.2.
* :func:`machine` -- generic homogeneous machine builder.
* :func:`cluster` -- replicate a machine builder behind a network
  vertex, as in the large-scale simulations (Sections 5.3-5.5).

Node naming is hierarchical and stable: machine ``m0``, socket
``m0/s1``, switch ``m0/s1/sw0``, GPU ``m0/gpu3``.  GPU indices are
machine-local and match ``CUDA_VISIBLE_DEVICES`` ordering under
``CUDA_DEVICE_ORDER=PCI_BUS_ID`` (Section 5.1).
"""

from __future__ import annotations

from typing import Callable

from repro.topology.graph import NodeKind, TopologyGraph
from repro.topology.links import DEFAULT_LEVEL_WEIGHTS, LinkSpec, LinkType

_W_GPU = DEFAULT_LEVEL_WEIGHTS["gpu"]
_W_SWITCH = DEFAULT_LEVEL_WEIGHTS["switch"]
_W_SOCKET = DEFAULT_LEVEL_WEIGHTS["socket"]
_W_MACHINE = DEFAULT_LEVEL_WEIGHTS["machine"]


def power8_minsky(machine_id: str = "m0") -> TopologyGraph:
    """IBM Power8 S822LC with 4x P100 and dual-lane NVLink (the paper's testbed)."""
    topo = TopologyGraph(name=f"power8-minsky[{machine_id}]")
    topo.add_node(machine_id, NodeKind.MACHINE)
    gpu = 0
    for s in range(2):
        sock = f"{machine_id}/s{s}"
        topo.add_node(sock, NodeKind.SOCKET, machine=machine_id)
        topo.add_edge(sock, machine_id, _W_SOCKET, LinkSpec.xbus())
        socket_gpus = []
        for _ in range(2):
            name = f"{machine_id}/gpu{gpu}"
            topo.add_node(
                name, NodeKind.GPU, machine=machine_id, socket=sock, gpu_index=gpu
            )
            # CPU-to-GPU dual-lane NVLink (40 GB/s unidirectional)
            topo.add_edge(name, sock, _W_GPU, LinkSpec.nvlink(2))
            socket_gpus.append(name)
            gpu += 1
        # GPU-to-GPU dual-lane NVLink within the socket
        topo.add_edge(socket_gpus[0], socket_gpus[1], _W_GPU, LinkSpec.nvlink(2))
    topo.validate()
    return topo


#: Hybrid cube-mesh NVLink edges of the DGX-1 (machine-local GPU indices):
#: the 12 cube edges plus the diagonals of the two socket-local faces,
#: giving every GPU exactly 4 NVLink ports.
DGX1_NVLINK_PAIRS: tuple[tuple[int, int], ...] = (
    # socket-0 face (with diagonals)
    (0, 1),
    (1, 3),
    (3, 2),
    (2, 0),
    (0, 3),
    (1, 2),
    # socket-1 face (with diagonals)
    (4, 5),
    (5, 7),
    (7, 6),
    (6, 4),
    (4, 7),
    (5, 6),
    # cross-socket cube edges
    (0, 4),
    (1, 5),
    (2, 6),
    (3, 7),
)


def dgx1(machine_id: str = "m0") -> TopologyGraph:
    """NVIDIA DGX-1: 8 GPUs, hybrid cube-mesh NVLink + PCIe switches."""
    topo = TopologyGraph(name=f"dgx1[{machine_id}]")
    topo.add_node(machine_id, NodeKind.MACHINE)
    gpu_names: list[str] = []
    gpu = 0
    for s in range(2):
        sock = f"{machine_id}/s{s}"
        topo.add_node(sock, NodeKind.SOCKET, machine=machine_id)
        # inter-socket bus on x86 DGX-1 is QPI (~19.2 GB/s)
        topo.add_edge(
            sock, machine_id, _W_SOCKET, LinkSpec(LinkType.XBUS, bandwidth_gbs=19.2)
        )
        for sw in range(2):
            switch = f"{sock}/sw{sw}"
            topo.add_node(switch, NodeKind.SWITCH, machine=machine_id, socket=sock)
            topo.add_edge(switch, sock, _W_SWITCH, LinkSpec.pcie())
            for _ in range(2):
                name = f"{machine_id}/gpu{gpu}"
                topo.add_node(
                    name, NodeKind.GPU, machine=machine_id, socket=sock, gpu_index=gpu
                )
                topo.add_edge(name, switch, _W_GPU, LinkSpec.pcie())
                gpu_names.append(name)
                gpu += 1
    for a, b in DGX1_NVLINK_PAIRS:
        topo.add_edge(gpu_names[a], gpu_names[b], _W_GPU, LinkSpec.nvlink(1))
    topo.validate()
    return topo


def power8_pcie_k80(machine_id: str = "m0") -> TopologyGraph:
    """Power8 machine with PCIe gen3 and K80 GPUs (Section 3.2 comparison).

    Each K80 board holds two GPU dies behind an on-board PCIe switch, so
    intra-socket peer-to-peer exists but runs at PCIe speed.
    """
    topo = TopologyGraph(name=f"power8-pcie-k80[{machine_id}]")
    topo.add_node(machine_id, NodeKind.MACHINE)
    gpu = 0
    for s in range(2):
        sock = f"{machine_id}/s{s}"
        topo.add_node(sock, NodeKind.SOCKET, machine=machine_id)
        topo.add_edge(sock, machine_id, _W_SOCKET, LinkSpec.xbus())
        switch = f"{sock}/sw0"
        topo.add_node(switch, NodeKind.SWITCH, machine=machine_id, socket=sock)
        topo.add_edge(switch, sock, _W_SWITCH, LinkSpec.pcie())
        for _ in range(2):
            name = f"{machine_id}/gpu{gpu}"
            topo.add_node(
                name, NodeKind.GPU, machine=machine_id, socket=sock, gpu_index=gpu
            )
            topo.add_edge(name, switch, _W_GPU, LinkSpec.pcie())
            gpu += 1
    topo.validate()
    return topo


def power9_ac922(machine_id: str = "m0") -> TopologyGraph:
    """IBM Power9 AC922 (Summit node): 2 sockets x 3 V100, NVLink 2.0.

    Not evaluated in the paper (it predates the machine) but the natural
    next-generation target: NVLink 2.0 lanes run at 25 GB/s and each
    CPU-GPU / GPU-GPU connection aggregates three of them (75 GB/s).
    """
    nvlink2_triple = LinkSpec(LinkType.NVLINK, lanes=3, bandwidth_gbs=75.0)
    topo = TopologyGraph(name=f"power9-ac922[{machine_id}]")
    topo.add_node(machine_id, NodeKind.MACHINE)
    gpu = 0
    for s in range(2):
        sock = f"{machine_id}/s{s}"
        topo.add_node(sock, NodeKind.SOCKET, machine=machine_id)
        topo.add_edge(sock, machine_id, _W_SOCKET, LinkSpec(LinkType.XBUS, bandwidth_gbs=64.0))
        names = []
        for _ in range(3):
            name = f"{machine_id}/gpu{gpu}"
            topo.add_node(
                name, NodeKind.GPU, machine=machine_id, socket=sock, gpu_index=gpu
            )
            topo.add_edge(name, sock, _W_GPU, nvlink2_triple)
            names.append(name)
            gpu += 1
        # the three socket-local GPUs form an NVLink triangle
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                topo.add_edge(a, b, _W_GPU, nvlink2_triple)
    topo.validate()
    return topo


def dgx2(machine_id: str = "m0") -> TopologyGraph:
    """NVIDIA DGX-2: 16 GPUs behind a full-bandwidth NVSwitch fabric.

    Every GPU pair communicates P2P through the NVSwitch plane at full
    NVLink2 bandwidth, so the whole machine is one P2P island -- the
    degenerate case where pack-vs-spread stops mattering *within* the
    machine and only host locality (socket PCIe uplinks) remains.
    """
    nvswitch_port = LinkSpec(LinkType.NVLINK, lanes=6, bandwidth_gbs=150.0)
    topo = TopologyGraph(name=f"dgx2[{machine_id}]")
    topo.add_node(machine_id, NodeKind.MACHINE)
    fabric = f"{machine_id}/nvswitch"
    topo.add_node(fabric, NodeKind.SWITCH, machine=machine_id)
    # baseboard attachment: high weight so no GPU<->host path ever
    # shortcuts through the fabric (host traffic uses the PCIe uplinks)
    topo.add_edge(fabric, machine_id, _W_MACHINE, LinkSpec.onboard())
    gpu = 0
    for s in range(2):
        sock = f"{machine_id}/s{s}"
        topo.add_node(sock, NodeKind.SOCKET, machine=machine_id)
        topo.add_edge(
            sock, machine_id, _W_SOCKET, LinkSpec(LinkType.XBUS, bandwidth_gbs=20.8)
        )
        for _ in range(8):
            name = f"{machine_id}/gpu{gpu}"
            topo.add_node(
                name, NodeKind.GPU, machine=machine_id, socket=sock, gpu_index=gpu
            )
            topo.add_edge(name, fabric, _W_GPU, nvswitch_port)
            # host traffic goes over PCIe to the owning socket
            topo.add_edge(name, sock, _W_SWITCH, LinkSpec.pcie())
            gpu += 1
    topo.validate()
    return topo


def machine(
    machine_id: str = "m0",
    *,
    sockets: int = 2,
    gpus_per_socket: int = 2,
    gpu_link: LinkSpec | None = None,
    peer_link: LinkSpec | None = None,
) -> TopologyGraph:
    """Generic homogeneous machine.

    ``gpu_link`` connects each GPU to its socket; ``peer_link`` (if not
    ``None``) forms a clique of direct GPU-GPU links inside each socket.
    Defaults model a Minsky-like dual-NVLink machine.
    """
    if sockets < 1 or gpus_per_socket < 1:
        raise ValueError("sockets and gpus_per_socket must be >= 1")
    gpu_link = gpu_link or LinkSpec.nvlink(2)
    topo = TopologyGraph(name=f"machine[{machine_id}]")
    topo.add_node(machine_id, NodeKind.MACHINE)
    gpu = 0
    for s in range(sockets):
        sock = f"{machine_id}/s{s}"
        topo.add_node(sock, NodeKind.SOCKET, machine=machine_id)
        topo.add_edge(sock, machine_id, _W_SOCKET, LinkSpec.xbus())
        names = []
        for _ in range(gpus_per_socket):
            name = f"{machine_id}/gpu{gpu}"
            topo.add_node(
                name, NodeKind.GPU, machine=machine_id, socket=sock, gpu_index=gpu
            )
            topo.add_edge(name, sock, _W_GPU, gpu_link)
            names.append(name)
            gpu += 1
        if peer_link is not None:
            for i, a in enumerate(names):
                for b in names[i + 1 :]:
                    topo.add_edge(a, b, _W_GPU, peer_link)
    topo.validate()
    return topo


def cluster(
    n_machines: int,
    builder: Callable[[str], TopologyGraph] = power8_minsky,
    *,
    network_name: str = "net",
    network_link: LinkSpec | None = None,
) -> TopologyGraph:
    """A cluster of ``n_machines`` identical machines behind one network.

    The large-scale simulations of the paper (Section 5.5) use
    homogeneous clusters of the Minsky machine; ``builder`` may be any
    per-machine constructor taking a machine id.
    """
    if n_machines < 1:
        raise ValueError("n_machines must be >= 1")
    network_link = network_link or LinkSpec.network()
    topo = TopologyGraph(name=f"cluster[{n_machines}x]")
    topo.add_node(network_name, NodeKind.NETWORK)
    for i in range(n_machines):
        mid = f"m{i}"
        topo.merge(builder(mid))
        topo.add_edge(mid, network_name, _W_MACHINE, network_link)
    topo.validate()
    return topo
