"""Cluster allocation bookkeeping.

:class:`AllocationState` tracks which GPUs are held by which job, and
derives the quantities the utility function and the interference model
need: free GPUs per machine/socket, socket fragmentation (Eq. 5), the
set of bus links a placement occupies, and link overlap between jobs.

GPUs are never shared between jobs (the paper assumes private GPU
access; only buses are shared).
"""

from __future__ import annotations

import itertools
from bisect import bisect_left, insort
from collections import OrderedDict, deque
from typing import Iterable, Iterator, Mapping

from repro.topology.graph import NodeKind, TopologyGraph


class AllocationError(RuntimeError):
    """Raised on conflicting or unknown allocations."""


#: bound on the GPU-set -> bus-links memo; old entries are evicted in
#: LRU order so 10k-job churn cannot grow the cache without limit.
LINKS_CACHE_MAX = 4096

#: how many recent mutations the per-machine delta log remembers.
#: Consumers (the incremental DRB tree) ask "which machines changed
#: since epoch v?"; when v has already scrolled out of the log the
#: answer is "unknown" and they fall back to a full rebuild, so the
#: bound trades memory for incremental-reuse opportunity only — never
#: correctness.
DELTA_LOG_MAX = 512


class AllocationState:
    """Mutable view of which job owns which GPUs on a topology.

    Every state mutation (allocate / release / machine down / machine
    up) bumps :attr:`version`, so derived caches — the placement memo
    in :class:`repro.core.placement.PlacementEngine`, the free-pool
    signature here — can be invalidated by a single integer compare
    instead of tracking individual deltas.
    """

    def __init__(self, topo: TopologyGraph) -> None:
        self.topo = topo
        self.version = 0
        self._gpu_owner: dict[str, str] = {}
        self._job_gpus: dict[str, frozenset[str]] = {}
        self._all_gpus = tuple(topo.gpus())
        self._links_cache: OrderedDict[
            frozenset[str], frozenset[tuple[str, str]]
        ] = OrderedDict()
        self._share_cache: OrderedDict[
            tuple[frozenset[str], frozenset[str]], float
        ] = OrderedDict()
        # O(1) per-machine free-count bookkeeping for large clusters
        self._free_count: dict[str, int] = {
            m: len(topo.gpus(machine=m)) for m in topo.machines()
        }
        self._jobs_by_machine: dict[str, set[str]] = {m: set() for m in topo.machines()}
        self._down_machines: set[str] = set()
        self._signature: tuple | None = None
        self._signature_version = -1
        self._pool_key: tuple | None = None
        self._pool_key_version = -1
        # maintained aggregates for O(1) capacity queries at fleet scale:
        # the set of unowned GPU ids (health-agnostic, mirrors the pool
        # key), the healthy-machine free total, and a capacity-bucket
        # index free-count -> sorted machine names (healthy machines
        # only) that lets the candidate prefilter walk hosts in exactly
        # the (free count asc, name asc) order the exhaustive scan sorts
        # them into — without visiting machines that cannot qualify.
        self._free_set: set[str] = set(self._all_gpus)
        self._total_free: int = len(self._all_gpus)
        self._buckets: dict[int, list[str]] = {}
        for m, c in self._free_count.items():
            self._buckets.setdefault(c, []).append(m)
        for lst in self._buckets.values():
            lst.sort()
        # per-machine pool epochs + a bounded log of which machines each
        # global epoch touched, so incremental consumers (the DRB split
        # cache) can patch instead of rebuilding.
        self._machine_version: dict[str, int] = {m: 0 for m in topo.machines()}
        self._delta_log: deque[frozenset[str]] = deque(maxlen=DELTA_LOG_MAX)

    # ------------------------------------------------------------------
    # capacity-bucket maintenance
    # ------------------------------------------------------------------
    def _bucket_discard(self, machine: str, count: int) -> None:
        lst = self._buckets.get(count)
        if lst is None:
            return
        i = bisect_left(lst, machine)
        if i < len(lst) and lst[i] == machine:
            del lst[i]
            if not lst:
                del self._buckets[count]

    def _bucket_add(self, machine: str, count: int) -> None:
        insort(self._buckets.setdefault(count, []), machine)

    def _apply_free_delta(self, machine: str, delta: int) -> None:
        old = self._free_count[machine]
        new = old + delta
        self._free_count[machine] = new
        self._machine_version[machine] += 1
        if machine not in self._down_machines:
            self._total_free += delta
            self._bucket_discard(machine, old)
            self._bucket_add(machine, new)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def allocate(self, job_id: str, gpus: Iterable[str]) -> None:
        gpu_set = frozenset(gpus)
        if not gpu_set:
            raise AllocationError(f"empty allocation for job {job_id!r}")
        if job_id in self._job_gpus:
            raise AllocationError(f"job {job_id!r} already has an allocation")
        for g in gpu_set:
            if self.topo.node(g).kind is not NodeKind.GPU:
                raise AllocationError(f"{g!r} is not a GPU")
            owner = self._gpu_owner.get(g)
            if owner is not None:
                raise AllocationError(f"GPU {g!r} already held by job {owner!r}")
        for g in gpu_set:
            self._gpu_owner[g] = job_id
        self._job_gpus[job_id] = gpu_set
        self._free_set.difference_update(gpu_set)
        taken: dict[str, int] = {}
        for g in gpu_set:
            m = self.topo.machine_of(g)
            taken[m] = taken.get(m, 0) + 1
        for m in taken:
            self._jobs_by_machine[m].add(job_id)
        for m, n in taken.items():
            self._apply_free_delta(m, -n)
        self.version += 1
        self._delta_log.append(frozenset(taken))

    def release(self, job_id: str) -> frozenset[str]:
        try:
            gpus = self._job_gpus.pop(job_id)
        except KeyError:
            raise AllocationError(f"job {job_id!r} has no allocation") from None
        freed: dict[str, int] = {}
        for g in gpus:
            del self._gpu_owner[g]
            m = self.topo.machine_of(g)
            freed[m] = freed.get(m, 0) + 1
        self._free_set.update(gpus)
        for m in freed:
            self._jobs_by_machine[m].discard(job_id)
        for m, n in freed.items():
            self._apply_free_delta(m, n)
        self.version += 1
        self._delta_log.append(frozenset(freed))
        return gpus

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def jobs(self) -> dict[str, frozenset[str]]:
        return dict(self._job_gpus)

    def gpus_of(self, job_id: str) -> frozenset[str]:
        try:
            return self._job_gpus[job_id]
        except KeyError:
            raise AllocationError(f"job {job_id!r} has no allocation") from None

    def owner_of(self, gpu: str) -> str | None:
        return self._gpu_owner.get(gpu)

    def is_free(self, gpu: str) -> bool:
        return gpu not in self._gpu_owner

    def free_gpus(self, machine: str | None = None, socket: str | None = None) -> list[str]:
        if machine is not None and machine in self._down_machines:
            return []
        if socket is not None and self.topo.machine_of(socket) in self._down_machines:
            return []
        pool = self.topo.gpus(machine=machine, socket=socket)
        if machine is None and self._down_machines:
            pool = [
                g for g in pool
                if self.topo.machine_of(g) not in self._down_machines
            ]
        return [g for g in pool if g not in self._gpu_owner]

    def free_count(self, machine: str) -> int:
        """Free GPUs on a machine, O(1) (hot path of host filtering).

        A failed machine offers no capacity until it recovers.
        """
        if machine in self._down_machines:
            return 0
        return self._free_count[machine]

    def max_free_count(self) -> int:
        """Largest per-machine free-GPU count.

        Schedulers use it to skip queued jobs that cannot fit anywhere
        without probing every machine per job.  O(distinct free counts),
        i.e. bounded by GPUs-per-machine — not O(machines) — thanks to
        the maintained capacity-bucket index.
        """
        return max(self._buckets, default=0)

    def total_free_count(self) -> int:
        """Free GPUs across all healthy machines, O(1) (maintained).

        The capacity ceiling for machine-spanning placements: a job
        needing more GPUs than this cannot fit even when allowed to
        span machines.
        """
        return self._total_free

    def eligible_machine_count(self, min_free: int) -> int:
        """How many healthy machines have ``>= min_free`` free GPUs.

        O(distinct free counts); the prefilter uses it to report the
        exact same free-GPU prune tally the exhaustive scan would have,
        without visiting the pruned machines.
        """
        return sum(
            len(lst) for c, lst in self._buckets.items() if c >= min_free
        )

    def candidate_machines(self, min_free: int) -> Iterator[str]:
        """Healthy machines with ``>= min_free`` free GPUs, in the
        exhaustive scan's survivor order: (free count asc, name asc).

        This is the capacity-dominance iterator behind the top-k
        prefilter: because host filtering sorts eligible machines by
        exactly this key before truncating to the engine's pool budget,
        probing candidates in this order and stopping once the budget
        is full provably yields the same pool list as scanning every
        machine.  The iterator is lazy — callers that stop early never
        pay for the tail.  Do not mutate the allocation mid-iteration.
        """
        for c in sorted(k for k in self._buckets if k >= min_free):
            yield from self._buckets[c]

    def machines_by_free_desc(self) -> Iterator[tuple[int, str]]:
        """Healthy machines with free GPUs, most-free first, ties by
        name — the machine-spanning pool's greedy accumulation order.

        Yields ``(free_count, machine)`` pairs lazily so the spanning
        path can stop as soon as it has gathered enough GPUs.
        """
        for c in sorted((k for k in self._buckets if k > 0), reverse=True):
            for m in self._buckets[c]:
                yield c, m

    def free_pool_signature(self) -> tuple:
        """Hashable snapshot of per-machine free capacity and health.

        Cached per :attr:`version` so repeated reads within one
        allocation epoch cost two attribute loads.  The signature
        deliberately tracks free *counts*, not free GPU identities:
        consumers (the placement memo) also key on the epoch, so a
        coarse signature only ever widens the invalidation, never
        misses one.
        """
        if self._signature_version != self.version:
            self._signature = (
                tuple(sorted(self._free_count.items())),
                frozenset(self._down_machines),
            )
            self._signature_version = self.version
        return self._signature

    def free_pool_key(self) -> tuple:
        """Identity-precise snapshot of the effective free pool.

        Unlike :meth:`free_pool_signature` (free *counts* per machine)
        this pins the exact set of free GPU ids plus machine health, so
        two states with an equal key offer byte-for-byte the same
        placement candidates.  It is what lets the placement memo keep
        entries *across* allocation epochs: an entry keyed on the pool
        identity can only ever be replayed against the identical pool.
        Cached per :attr:`version`; the frozensets hash once and reuse
        the stored hash on every memo lookup.
        """
        if self._pool_key_version != self.version:
            self._pool_key = (
                frozenset(self._free_set),
                frozenset(self._down_machines),
            )
            self._pool_key_version = self.version
        return self._pool_key

    # ------------------------------------------------------------------
    # incremental-consumer epoch plumbing
    # ------------------------------------------------------------------
    def machine_pool_version(self, machine: str) -> int:
        """Per-machine pool epoch: bumped whenever the machine's free
        pool or health changes.  Pins everything derivable from the
        machine's occupancy — which GPUs are free, which jobs hold GPUs
        there and with what GPU sets — so version-keyed memo entries
        (socket fragmentation, Eq. 4 interference per candidate side)
        stay valid exactly as long as every pinned machine is untouched.
        """
        try:
            return self._machine_version[machine]
        except KeyError:
            raise AllocationError(f"unknown machine {machine!r}") from None

    def machines_changed_since(self, version: int) -> frozenset[str] | None:
        """Machines touched by any mutation after global epoch
        ``version``, or ``None`` when that epoch has scrolled out of
        the bounded delta log (consumers must then rebuild from
        scratch).  Each epoch bump appends exactly one log entry, so
        the last ``self.version - version`` entries cover the gap.
        """
        missing = self.version - version
        if missing <= 0:
            return frozenset()
        if missing > len(self._delta_log):
            return None
        changed: set[str] = set()
        for i, machines in enumerate(reversed(self._delta_log)):
            if i >= missing:
                break
            changed |= machines
        return frozenset(changed)

    # ------------------------------------------------------------------
    # machine health (failure injection)
    # ------------------------------------------------------------------
    def set_machine_down(self, machine: str) -> list[str]:
        """Mark a machine failed; returns the jobs it was running.

        The caller (the simulator) is responsible for releasing and
        resubmitting those jobs.  Marking an already-down machine down
        again (a repeated failure heartbeat) changes nothing, so it
        does not bump the epoch — derived caches stay warm.
        """
        if machine not in self._free_count:
            raise AllocationError(f"unknown machine {machine!r}")
        if machine not in self._down_machines:
            count = self._free_count[machine]
            self._bucket_discard(machine, count)
            self._total_free -= count
            self._down_machines.add(machine)
            self._machine_version[machine] += 1
            self.version += 1
            self._delta_log.append(frozenset((machine,)))
        return sorted(self._jobs_by_machine[machine])

    def set_machine_up(self, machine: str) -> None:
        """Bring a machine (back) into service.

        A liveness heartbeat for a machine that is already up is a
        no-op and must not bump the epoch: a long-running daemon
        re-asserting machine health every few seconds would otherwise
        invalidate the placement memo without changing the free pool.
        """
        if machine not in self._free_count:
            raise AllocationError(f"unknown machine {machine!r}")
        if machine in self._down_machines:
            self._down_machines.discard(machine)
            count = self._free_count[machine]
            self._bucket_add(machine, count)
            self._total_free += count
            self._machine_version[machine] += 1
            self.version += 1
            self._delta_log.append(frozenset((machine,)))

    def is_machine_up(self, machine: str) -> bool:
        return machine not in self._down_machines

    def jobs_on_machine(self, machine: str) -> frozenset[str]:
        """Jobs currently holding GPUs on ``machine``, O(1)."""
        return frozenset(self._jobs_by_machine[machine])

    def busy_gpus(self, machine: str | None = None) -> list[str]:
        return [
            g for g in self.topo.gpus(machine=machine) if g in self._gpu_owner
        ]

    def busy_count(self) -> int:
        """Allocated GPUs cluster-wide, O(1) (hot path of the
        per-round telemetry signals)."""
        return len(self._gpu_owner)

    def utilization(self) -> float:
        """Fraction of all GPUs currently allocated."""
        if not self._all_gpus:
            return 0.0
        return len(self._gpu_owner) / len(self._all_gpus)

    # ------------------------------------------------------------------
    # fragmentation (Eq. 5)
    # ------------------------------------------------------------------
    def socket_free_fraction(self, socket: str) -> float:
        gpus = self.topo.gpus(socket=socket)
        if not gpus:
            return 0.0
        free = sum(1 for g in gpus if g not in self._gpu_owner)
        return free / len(gpus)

    def fragmentation(self, machine: str | None = None) -> float:
        """Average per-socket free-GPU fraction (Eq. 5's omega)."""
        sockets = self.topo.sockets(machine=machine)
        if not sockets:
            return 0.0
        return sum(self.socket_free_fraction(s) for s in sockets) / len(sockets)

    # ------------------------------------------------------------------
    # link usage / sharing
    # ------------------------------------------------------------------
    def links_used(self, gpus: Iterable[str]) -> frozenset[tuple[str, str]]:
        """Bus edges a job with this GPU set occupies.

        The union of edges along shortest paths between all GPU pairs
        (peer traffic) plus the path from each GPU to its socket (host
        traffic: input pipeline, parameter staging without P2P), plus a
        ``("dram", socket)`` pseudo-link for every touched socket --
        co-located jobs contend on the socket's memory bandwidth even
        when their bus links are disjoint (the Power8 counters the
        paper samples with Perfmon2 measure exactly this channel).
        """
        gpu_set = frozenset(gpus)
        cached = self._links_cache.get(gpu_set)
        if cached is not None:
            self._links_cache.move_to_end(gpu_set)
            return cached
        edges: set[tuple[str, str]] = set()
        ordered = sorted(gpu_set)
        for a, b in itertools.combinations(ordered, 2):
            for edge in self.topo.path_edges(a, b):
                edges.add(edge.key)
        for g in ordered:
            socket = self.topo.socket_of(g)
            for edge in self.topo.path_edges(g, socket):
                edges.add(edge.key)
            edges.add(("dram", socket))
        result = frozenset(edges)
        self._links_cache[gpu_set] = result
        if len(self._links_cache) > LINKS_CACHE_MAX:
            self._links_cache.popitem(last=False)
        return result

    def shared_links(
        self, gpus_a: Iterable[str], gpus_b: Iterable[str]
    ) -> frozenset[tuple[str, str]]:
        return self.links_used(gpus_a) & self.links_used(gpus_b)

    def link_sharing_factor(
        self, gpus_a: Iterable[str], gpus_b: Iterable[str]
    ) -> float:
        """How much of job A's bus footprint job B touches, in [0, 1].

        0 means fully disjoint buses (no direct contention channel);
        1 means every link A uses is also used by B.  Used to scale the
        profile-table interference between co-located jobs.

        Pure in the topology (bus footprints never change while the
        graph lives), so the pair result is memoised: interference
        evaluation revisits the same co-runner pairs every round.
        """
        key = (frozenset(gpus_a), frozenset(gpus_b))
        cached = self._share_cache.get(key)
        if cached is not None:
            self._share_cache.move_to_end(key)
            return cached
        links_a = self.links_used(key[0])
        if not links_a:
            result = 0.0
        else:
            shared = links_a & self.links_used(key[1])
            result = len(shared) / len(links_a)
        self._share_cache[key] = result
        if len(self._share_cache) > LINKS_CACHE_MAX:
            self._share_cache.popitem(last=False)
        return result

    def link_utilization(
        self,
        demands: Mapping[str, float],
    ) -> dict[tuple[str, str], float]:
        """Aggregate bus demand per link (GB/s) across allocations.

        ``demands`` maps job id -> average bus demand; each job's
        demand is charged to every link in its footprint (including the
        per-socket DRAM pseudo-links).  Used for bottleneck diagnostics
        and the Figure 8-style bus panels.
        """
        out: dict[tuple[str, str], float] = {}
        for job_id, gpus in self._job_gpus.items():
            demand = demands.get(job_id)
            if not demand:
                continue
            for key in self.links_used(gpus):
                out[key] = out.get(key, 0.0) + demand
        return out

    def hottest_links(
        self, demands: Mapping[str, float], top: int = 5
    ) -> list[tuple[tuple[str, str], float]]:
        """The ``top`` busiest links, hottest first."""
        util = self.link_utilization(demands)
        return sorted(util.items(), key=lambda kv: (-kv[1], kv[0]))[:top]

    def co_located_jobs(self, gpus: Iterable[str]) -> list[str]:
        """Jobs holding GPUs on any machine touched by ``gpus``."""
        machines = {self.topo.machine_of(g) for g in gpus}
        out = []
        for job_id, held in self._job_gpus.items():
            if any(self.topo.machine_of(g) in machines for g in held):
                out.append(job_id)
        return sorted(out)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AllocationState(jobs={len(self._job_gpus)}, "
            f"busy={len(self._gpu_owner)}/{len(self._all_gpus)})"
        )
