"""Cluster allocation bookkeeping.

:class:`AllocationState` tracks which GPUs are held by which job, and
derives the quantities the utility function and the interference model
need: free GPUs per machine/socket, socket fragmentation (Eq. 5), the
set of bus links a placement occupies, and link overlap between jobs.

GPUs are never shared between jobs (the paper assumes private GPU
access; only buses are shared).
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from typing import FrozenSet, Iterable, Mapping

from repro.topology.graph import NodeKind, TopologyGraph


class AllocationError(RuntimeError):
    """Raised on conflicting or unknown allocations."""


#: bound on the GPU-set -> bus-links memo; old entries are evicted in
#: LRU order so 10k-job churn cannot grow the cache without limit.
LINKS_CACHE_MAX = 4096


class AllocationState:
    """Mutable view of which job owns which GPUs on a topology.

    Every state mutation (allocate / release / machine down / machine
    up) bumps :attr:`version`, so derived caches — the placement memo
    in :class:`repro.core.placement.PlacementEngine`, the free-pool
    signature here — can be invalidated by a single integer compare
    instead of tracking individual deltas.
    """

    def __init__(self, topo: TopologyGraph) -> None:
        self.topo = topo
        self.version = 0
        self._gpu_owner: dict[str, str] = {}
        self._job_gpus: dict[str, frozenset[str]] = {}
        self._all_gpus = tuple(topo.gpus())
        self._links_cache: OrderedDict[
            frozenset[str], frozenset[tuple[str, str]]
        ] = OrderedDict()
        # O(1) per-machine free-count bookkeeping for large clusters
        self._free_count: dict[str, int] = {
            m: len(topo.gpus(machine=m)) for m in topo.machines()
        }
        self._jobs_by_machine: dict[str, set[str]] = {m: set() for m in topo.machines()}
        self._down_machines: set[str] = set()
        self._signature: tuple | None = None
        self._signature_version = -1
        self._pool_key: tuple | None = None
        self._pool_key_version = -1

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def allocate(self, job_id: str, gpus: Iterable[str]) -> None:
        gpu_set = frozenset(gpus)
        if not gpu_set:
            raise AllocationError(f"empty allocation for job {job_id!r}")
        if job_id in self._job_gpus:
            raise AllocationError(f"job {job_id!r} already has an allocation")
        for g in gpu_set:
            if self.topo.node(g).kind is not NodeKind.GPU:
                raise AllocationError(f"{g!r} is not a GPU")
            owner = self._gpu_owner.get(g)
            if owner is not None:
                raise AllocationError(f"GPU {g!r} already held by job {owner!r}")
        for g in gpu_set:
            self._gpu_owner[g] = job_id
        self._job_gpus[job_id] = gpu_set
        for m in {self.topo.machine_of(g) for g in gpu_set}:
            self._jobs_by_machine[m].add(job_id)
        for g in gpu_set:
            self._free_count[self.topo.machine_of(g)] -= 1
        self.version += 1

    def release(self, job_id: str) -> frozenset[str]:
        try:
            gpus = self._job_gpus.pop(job_id)
        except KeyError:
            raise AllocationError(f"job {job_id!r} has no allocation") from None
        for g in gpus:
            del self._gpu_owner[g]
            self._free_count[self.topo.machine_of(g)] += 1
        for m in {self.topo.machine_of(g) for g in gpus}:
            self._jobs_by_machine[m].discard(job_id)
        self.version += 1
        return gpus

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def jobs(self) -> dict[str, frozenset[str]]:
        return dict(self._job_gpus)

    def gpus_of(self, job_id: str) -> frozenset[str]:
        try:
            return self._job_gpus[job_id]
        except KeyError:
            raise AllocationError(f"job {job_id!r} has no allocation") from None

    def owner_of(self, gpu: str) -> str | None:
        return self._gpu_owner.get(gpu)

    def is_free(self, gpu: str) -> bool:
        return gpu not in self._gpu_owner

    def free_gpus(self, machine: str | None = None, socket: str | None = None) -> list[str]:
        if machine is not None and machine in self._down_machines:
            return []
        if socket is not None and self.topo.machine_of(socket) in self._down_machines:
            return []
        pool = self.topo.gpus(machine=machine, socket=socket)
        if machine is None and self._down_machines:
            pool = [
                g for g in pool
                if self.topo.machine_of(g) not in self._down_machines
            ]
        return [g for g in pool if g not in self._gpu_owner]

    def free_count(self, machine: str) -> int:
        """Free GPUs on a machine, O(1) (hot path of host filtering).

        A failed machine offers no capacity until it recovers.
        """
        if machine in self._down_machines:
            return 0
        return self._free_count[machine]

    def max_free_count(self) -> int:
        """Largest per-machine free-GPU count, O(machines).

        Schedulers use it to skip queued jobs that cannot fit anywhere
        without probing every machine per job.
        """
        return max(
            (c for m, c in self._free_count.items() if m not in self._down_machines),
            default=0,
        )

    def total_free_count(self) -> int:
        """Free GPUs across all healthy machines, O(machines).

        The capacity ceiling for machine-spanning placements: a job
        needing more GPUs than this cannot fit even when allowed to
        span machines.
        """
        return sum(
            c for m, c in self._free_count.items() if m not in self._down_machines
        )

    def free_pool_signature(self) -> tuple:
        """Hashable snapshot of per-machine free capacity and health.

        Cached per :attr:`version` so repeated reads within one
        allocation epoch cost two attribute loads.  The signature
        deliberately tracks free *counts*, not free GPU identities:
        consumers (the placement memo) also key on the epoch, so a
        coarse signature only ever widens the invalidation, never
        misses one.
        """
        if self._signature_version != self.version:
            self._signature = (
                tuple(sorted(self._free_count.items())),
                frozenset(self._down_machines),
            )
            self._signature_version = self.version
        return self._signature

    def free_pool_key(self) -> tuple:
        """Identity-precise snapshot of the effective free pool.

        Unlike :meth:`free_pool_signature` (free *counts* per machine)
        this pins the exact set of free GPU ids plus machine health, so
        two states with an equal key offer byte-for-byte the same
        placement candidates.  It is what lets the placement memo keep
        entries *across* allocation epochs: an entry keyed on the pool
        identity can only ever be replayed against the identical pool.
        Cached per :attr:`version`; the frozensets hash once and reuse
        the stored hash on every memo lookup.
        """
        if self._pool_key_version != self.version:
            owner = self._gpu_owner
            self._pool_key = (
                frozenset(g for g in self._all_gpus if g not in owner),
                frozenset(self._down_machines),
            )
            self._pool_key_version = self.version
        return self._pool_key

    # ------------------------------------------------------------------
    # machine health (failure injection)
    # ------------------------------------------------------------------
    def set_machine_down(self, machine: str) -> list[str]:
        """Mark a machine failed; returns the jobs it was running.

        The caller (the simulator) is responsible for releasing and
        resubmitting those jobs.  Marking an already-down machine down
        again (a repeated failure heartbeat) changes nothing, so it
        does not bump the epoch — derived caches stay warm.
        """
        if machine not in self._free_count:
            raise AllocationError(f"unknown machine {machine!r}")
        if machine not in self._down_machines:
            self._down_machines.add(machine)
            self.version += 1
        return sorted(self._jobs_by_machine[machine])

    def set_machine_up(self, machine: str) -> None:
        """Bring a machine (back) into service.

        A liveness heartbeat for a machine that is already up is a
        no-op and must not bump the epoch: a long-running daemon
        re-asserting machine health every few seconds would otherwise
        invalidate the placement memo without changing the free pool.
        """
        if machine not in self._free_count:
            raise AllocationError(f"unknown machine {machine!r}")
        if machine in self._down_machines:
            self._down_machines.discard(machine)
            self.version += 1

    def is_machine_up(self, machine: str) -> bool:
        return machine not in self._down_machines

    def jobs_on_machine(self, machine: str) -> frozenset[str]:
        """Jobs currently holding GPUs on ``machine``, O(1)."""
        return frozenset(self._jobs_by_machine[machine])

    def busy_gpus(self, machine: str | None = None) -> list[str]:
        return [
            g for g in self.topo.gpus(machine=machine) if g in self._gpu_owner
        ]

    def utilization(self) -> float:
        """Fraction of all GPUs currently allocated."""
        if not self._all_gpus:
            return 0.0
        return len(self._gpu_owner) / len(self._all_gpus)

    # ------------------------------------------------------------------
    # fragmentation (Eq. 5)
    # ------------------------------------------------------------------
    def socket_free_fraction(self, socket: str) -> float:
        gpus = self.topo.gpus(socket=socket)
        if not gpus:
            return 0.0
        free = sum(1 for g in gpus if g not in self._gpu_owner)
        return free / len(gpus)

    def fragmentation(self, machine: str | None = None) -> float:
        """Average per-socket free-GPU fraction (Eq. 5's omega)."""
        sockets = self.topo.sockets(machine=machine)
        if not sockets:
            return 0.0
        return sum(self.socket_free_fraction(s) for s in sockets) / len(sockets)

    # ------------------------------------------------------------------
    # link usage / sharing
    # ------------------------------------------------------------------
    def links_used(self, gpus: Iterable[str]) -> frozenset[tuple[str, str]]:
        """Bus edges a job with this GPU set occupies.

        The union of edges along shortest paths between all GPU pairs
        (peer traffic) plus the path from each GPU to its socket (host
        traffic: input pipeline, parameter staging without P2P), plus a
        ``("dram", socket)`` pseudo-link for every touched socket --
        co-located jobs contend on the socket's memory bandwidth even
        when their bus links are disjoint (the Power8 counters the
        paper samples with Perfmon2 measure exactly this channel).
        """
        gpu_set = frozenset(gpus)
        cached = self._links_cache.get(gpu_set)
        if cached is not None:
            self._links_cache.move_to_end(gpu_set)
            return cached
        edges: set[tuple[str, str]] = set()
        ordered = sorted(gpu_set)
        for a, b in itertools.combinations(ordered, 2):
            for edge in self.topo.path_edges(a, b):
                edges.add(edge.key)
        for g in ordered:
            socket = self.topo.socket_of(g)
            for edge in self.topo.path_edges(g, socket):
                edges.add(edge.key)
            edges.add(("dram", socket))
        result = frozenset(edges)
        self._links_cache[gpu_set] = result
        if len(self._links_cache) > LINKS_CACHE_MAX:
            self._links_cache.popitem(last=False)
        return result

    def shared_links(
        self, gpus_a: Iterable[str], gpus_b: Iterable[str]
    ) -> frozenset[tuple[str, str]]:
        return self.links_used(gpus_a) & self.links_used(gpus_b)

    def link_sharing_factor(
        self, gpus_a: Iterable[str], gpus_b: Iterable[str]
    ) -> float:
        """How much of job A's bus footprint job B touches, in [0, 1].

        0 means fully disjoint buses (no direct contention channel);
        1 means every link A uses is also used by B.  Used to scale the
        profile-table interference between co-located jobs.
        """
        links_a = self.links_used(gpus_a)
        if not links_a:
            return 0.0
        shared = links_a & self.links_used(gpus_b)
        return len(shared) / len(links_a)

    def link_utilization(
        self,
        demands: Mapping[str, float],
    ) -> dict[tuple[str, str], float]:
        """Aggregate bus demand per link (GB/s) across allocations.

        ``demands`` maps job id -> average bus demand; each job's
        demand is charged to every link in its footprint (including the
        per-socket DRAM pseudo-links).  Used for bottleneck diagnostics
        and the Figure 8-style bus panels.
        """
        out: dict[tuple[str, str], float] = {}
        for job_id, gpus in self._job_gpus.items():
            demand = demands.get(job_id)
            if not demand:
                continue
            for key in self.links_used(gpus):
                out[key] = out.get(key, 0.0) + demand
        return out

    def hottest_links(
        self, demands: Mapping[str, float], top: int = 5
    ) -> list[tuple[tuple[str, str], float]]:
        """The ``top`` busiest links, hottest first."""
        util = self.link_utilization(demands)
        return sorted(util.items(), key=lambda kv: (-kv[1], kv[0]))[:top]

    def co_located_jobs(self, gpus: Iterable[str]) -> list[str]:
        """Jobs holding GPUs on any machine touched by ``gpus``."""
        machines = {self.topo.machine_of(g) for g in gpus}
        out = []
        for job_id, held in self._job_gpus.items():
            if any(self.topo.machine_of(g) in machines for g in held):
                out.append(job_id)
        return sorted(out)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AllocationState(jobs={len(self._job_gpus)}, "
            f"busy={len(self._gpu_owner)}/{len(self._all_gpus)})"
        )
