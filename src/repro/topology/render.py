"""ASCII rendering of topology graphs (the Figure 1/7 pictures, textual).

:func:`render_tree` draws the hierarchy with per-edge link annotations;
:func:`render_gpu_distances` prints the GPU distance matrix the mapping
algorithm optimises over.  Both back the ``repro topo`` CLI command and
make custom topologies reviewable in logs and tests.
"""

from __future__ import annotations

from repro.topology.graph import NodeKind, TopologyGraph
from repro.topology.links import LinkType


def _link_label(topo: TopologyGraph, u: str, v: str) -> str:
    edge = topo.edge(u, v)
    spec = edge.spec
    if spec.link_type is LinkType.NVLINK:
        return f"NVLink x{spec.lanes} ({spec.bandwidth_gbs:.0f} GB/s)"
    if spec.link_type is LinkType.ONBOARD:
        return "onboard"
    return f"{spec.link_type.value} ({spec.bandwidth_gbs:.1f} GB/s)"


def render_tree(topo: TopologyGraph) -> str:
    """Hierarchical tree view with link annotations and peer links.

    Children are ordered deterministically; direct GPU-GPU links are
    listed under a trailing ``peer links`` section since they do not fit
    a tree shape.
    """
    lines: list[str] = [topo.name]
    roots = [n.name for n in topo.nodes(NodeKind.NETWORK)] or topo.machines()

    def children_of(name: str) -> list[str]:
        node = topo.node(name)
        order = {
            NodeKind.NETWORK: (NodeKind.MACHINE,),
            NodeKind.MACHINE: (NodeKind.SOCKET, NodeKind.SWITCH),
            NodeKind.SOCKET: (NodeKind.SWITCH, NodeKind.GPU),
            NodeKind.SWITCH: (NodeKind.GPU,),
            NodeKind.GPU: (),
        }[node.kind]
        out = [
            nbr
            for nbr in sorted(topo.neighbors(name))
            if topo.node(nbr).kind in order
        ]
        return out

    def walk(name: str, prefix: str, is_last: bool, parent: str | None) -> None:
        connector = "`-- " if is_last else "|-- "
        label = name if parent is None else (
            f"{name}  [{_link_label(topo, parent, name)}]"
        )
        lines.append(f"{prefix}{connector}{label}" if parent is not None else f"{connector}{label}")
        kids = children_of(name)
        child_prefix = prefix + ("    " if is_last else "|   ")
        for i, kid in enumerate(kids):
            walk(kid, child_prefix if parent is not None else "    ", i == len(kids) - 1, name)

    for i, root in enumerate(roots):
        walk(root, "", i == len(roots) - 1, None)

    peers = topo.nvlink_pairs()
    if peers:
        lines.append("peer links:")
        for a, b in peers:
            lines.append(f"  {a} <-> {b}  [{_link_label(topo, a, b)}]")
    return "\n".join(lines)


def render_gpu_distances(topo: TopologyGraph, machine: str | None = None) -> str:
    """The pairwise GPU distance matrix (Eq. 3's raw material)."""
    gpus = topo.gpus(machine=machine)
    if not gpus:
        return "(no GPUs)"
    labels = [f"gpu{topo.gpu_index_of(g)}" for g in gpus]
    width = max(5, max(len(l) for l in labels) + 1)
    header = " " * width + "".join(f"{l:>{width}}" for l in labels)
    lines = [header]
    for g, label in zip(gpus, labels):
        cells = "".join(
            f"{topo.distance(g, h):>{width}.0f}" for h in gpus
        )
        lines.append(f"{label:>{width}}{cells}")
    return "\n".join(lines)
