"""Collective-communication cost models over a concrete task mapping.

The baseline performance model charges a synchronous all-reduce at the
worst GPU pair's bandwidth -- the right bound for NCCL-style rings on
small machines and the form the calibration anchors to.  This module
refines that with *mapping-aware* costs, so the task order DRB produces
actually matters:

* :func:`ring_allreduce_time` -- a ring moves ``2(n-1)/n * V`` per
  member over the ring's slowest hop; the hop set depends on the ring
  order, which :func:`best_ring_order` optimises greedily (NCCL does
  the same topology-aware ring construction).
* :func:`tree_allreduce_time` -- reduce + broadcast over a binary tree:
  ``2*ceil(log2 n)`` sequential steps at the bottleneck bandwidth.
  Better than a ring at small volumes / large n.
* :func:`chain_pipeline_time` -- model-parallel pipelines move layer
  activations stage to stage; with stages overlapped the iteration is
  limited by the slowest stage link.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.perf.calibration import NO_P2P_PENALTY
from repro.topology.graph import TopologyGraph


def effective_pair_bandwidth(
    topo: TopologyGraph,
    gpu_a: str,
    gpu_b: str,
    no_p2p_penalty: float = NO_P2P_PENALTY,
) -> float:
    """Bottleneck-path bandwidth with the host-staging penalty applied."""
    bw = topo.bottleneck_bandwidth(gpu_a, gpu_b)
    if not topo.p2p_connected(gpu_a, gpu_b):
        bw *= no_p2p_penalty
    return bw


def ring_allreduce_time(
    topo: TopologyGraph,
    ring_order: Sequence[str],
    volume_gb: float,
    no_p2p_penalty: float = NO_P2P_PENALTY,
) -> float:
    """Seconds for one ring all-reduce of ``volume_gb`` per member.

    The ring is ``ring_order[0] -> ... -> ring_order[-1] -> ring_order[0]``;
    every step is paced by the slowest hop.
    """
    n = len(ring_order)
    if n < 1:
        raise ValueError("empty ring")
    if n == 1:
        return 0.0
    if volume_gb < 0:
        raise ValueError("negative volume")
    hops = list(zip(ring_order, ring_order[1:])) + [(ring_order[-1], ring_order[0])]
    if n == 2:
        hops = hops[:1]  # a 2-ring is a single bidirectional link
    slowest = min(
        effective_pair_bandwidth(topo, a, b, no_p2p_penalty) for a, b in hops
    )
    return 2.0 * (n - 1) / n * volume_gb / slowest


def best_ring_order(topo: TopologyGraph, gpus: Sequence[str]) -> list[str]:
    """Greedy nearest-neighbour ring construction (NCCL-style).

    Starts at the lexicographically first GPU and always extends to the
    closest unvisited one; deterministic, and optimal for the small
    hierarchical machines modelled here.
    """
    remaining = sorted(gpus)
    if not remaining:
        raise ValueError("no GPUs")
    order = [remaining.pop(0)]
    while remaining:
        last = order[-1]
        nxt = min(remaining, key=lambda g: (topo.distance(last, g), g))
        remaining.remove(nxt)
        order.append(nxt)
    return order


def tree_allreduce_time(
    topo: TopologyGraph,
    gpus: Sequence[str],
    volume_gb: float,
    no_p2p_penalty: float = NO_P2P_PENALTY,
) -> float:
    """Seconds for a reduce+broadcast binary tree over ``gpus``."""
    n = len(gpus)
    if n < 1:
        raise ValueError("no GPUs")
    if n == 1:
        return 0.0
    gpus = sorted(gpus)
    slowest = min(
        effective_pair_bandwidth(topo, a, b, no_p2p_penalty)
        for i, a in enumerate(gpus)
        for b in gpus[i + 1 :]
    )
    steps = 2 * math.ceil(math.log2(n))
    return steps * volume_gb / slowest


def best_allreduce_time(
    topo: TopologyGraph,
    gpus: Sequence[str],
    volume_gb: float,
    no_p2p_penalty: float = NO_P2P_PENALTY,
) -> tuple[float, str]:
    """(seconds, algorithm) for the cheaper of ring vs tree."""
    ring = ring_allreduce_time(
        topo, best_ring_order(topo, gpus), volume_gb, no_p2p_penalty
    )
    tree = tree_allreduce_time(topo, gpus, volume_gb, no_p2p_penalty)
    return (ring, "ring") if ring <= tree else (tree, "tree")


def chain_pipeline_time(
    topo: TopologyGraph,
    stage_order: Sequence[str],
    volume_gb: float,
    no_p2p_penalty: float = NO_P2P_PENALTY,
) -> float:
    """Per-iteration time of an overlapped layer pipeline.

    ``stage_order[i]`` hosts pipeline stage ``i``; with stages
    overlapped, throughput is set by the slowest inter-stage link.
    """
    if len(stage_order) < 1:
        raise ValueError("empty pipeline")
    if len(stage_order) == 1:
        return 0.0
    slowest = min(
        effective_pair_bandwidth(topo, a, b, no_p2p_penalty)
        for a, b in zip(stage_order, stage_order[1:])
    )
    return volume_gb / slowest
