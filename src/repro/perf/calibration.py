"""Calibrated constants of the performance model.

The model for a data-parallel training job is

``iter_time = compute(batch) + comm(placement)``

* ``compute(batch) = compute_base_s + compute_per_sample_s * batch`` --
  per-iteration GPU compute, linear in the per-GPU batch size.  This
  reproduces Figure 3's observation that compute grows from ~1 s to
  ~66 s per 40 AlexNet iterations as the batch grows 1 -> 128 while
  communication stays roughly constant.
* ``comm(placement) = allreduce_scale(n) * comm_volume_gb / bw_eff`` --
  gradient exchange per iteration.  ``comm_volume_gb`` is an *effective*
  volume (it folds per-layer synchronisation inefficiency into a single
  constant, which is why it exceeds the raw parameter size); ``bw_eff``
  is the bottleneck-path bandwidth between the allocated GPUs, reduced
  by ``NO_P2P_PENALTY`` when traffic must be routed through host memory
  (no peer-to-peer), as the paper describes for cross-socket pairs.

Anchors used for calibration (all from the paper):

* Fig. 3: AlexNet 40-iteration compute ~1 s (batch 1) -> ~66 s (batch
  128); communication ~2 s at every batch size; GoogLeNet communicates
  far less (Inception modules).
* Fig. 4: pack-vs-spread speedup ~1.3x for AlexNet at batch 1-2,
  fading to ~1.0 beyond batch 16; GoogLeNet ~flat.
* Sec. 3.2: on the PCIe/K80 machine the same speedups are 1.24x /
  1.21x / ~1.1x at batches 1 / 2 / 8.
* Fig. 5: NVLink traffic ~40 GB/s at batch 1 vs ~6 GB/s at batch 128.
* Fig. 6: co-location slowdowns ~30% (tiny+tiny), ~24% (big+tiny),
  ~21% (big+small), ~0 (big+big) -- encoded as per-class *sensitivity*
  (how much a job suffers; tracks its communication fraction) and
  *pressure* (how much it perturbs others; nearly flat in batch size
  because the same gradient bytes move regardless of how often).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping

from repro.workload.job import BatchClass, ModelType

#: Effective-bandwidth multiplier when GPU pairs cannot use P2P and
#: traffic is staged through host memory (extra copies + contention).
NO_P2P_PENALTY = 0.718


class MachineKind(enum.Enum):
    """Machine families with distinct calibrations (Section 3.1/3.2)."""

    NVLINK_P100 = "nvlink-p100"  # Power8 "Minsky", the main testbed
    PCIE_K80 = "pcie-k80"  # the PCIe gen3 / K80 comparison machine

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class ModelCalibration:
    """Per-neural-network constants."""

    compute_base_s: float  # per-iteration fixed compute cost (s)
    compute_per_sample_s: float  # per-sample compute cost (s)
    comm_volume_gb: float  # effective per-iteration gradient volume (GB)
    params_gb: float  # raw parameter size (GB), for documentation/bw plots

    def compute_time(self, batch_size: int) -> float:
        if batch_size < 1:
            raise ValueError("batch size must be >= 1")
        return self.compute_base_s + self.compute_per_sample_s * batch_size


#: How much slower the K80 computes relative to the P100 (roughly the
#: per-die fp32 throughput ratio, ~2.8 vs ~9.3 TFLOPS); communication
#: constants are shared and the bandwidth difference comes from the
#: topology graph itself.  With 3.0 the Section 3.2 PCIe anchors
#: (1.24x / 1.21x / ~1.1x at batches 1 / 2 / 8) all reproduce.
K80_COMPUTE_FACTOR = 3.0


@dataclass(frozen=True)
class Calibration:
    """Full calibration: per-model constants + interference classes."""

    models: Mapping[ModelType, ModelCalibration]
    sensitivity: Mapping[BatchClass, float]
    pressure: Mapping[BatchClass, float]
    no_p2p_penalty: float = NO_P2P_PENALTY
    k80_compute_factor: float = K80_COMPUTE_FACTOR

    def model(self, model_type: ModelType) -> ModelCalibration:
        return self.models[model_type]

    def compute_time(
        self,
        model_type: ModelType,
        batch_size: int,
        machine: MachineKind = MachineKind.NVLINK_P100,
    ) -> float:
        t = self.models[model_type].compute_time(batch_size)
        if machine is MachineKind.PCIE_K80:
            t *= self.k80_compute_factor
        return t


DEFAULT_CALIBRATION = Calibration(
    models={
        # AlexNet: 61M params; heavy communication relative to compute.
        ModelType.ALEXNET: ModelCalibration(
            compute_base_s=0.013,
            compute_per_sample_s=0.0128,
            comm_volume_gb=2.0,
            params_gb=0.244,
        ),
        # CaffeRef is AlexNet-derived: slightly more compute, a bit less
        # effective exchange (Fig. 4 shows slightly lower speedups).
        ModelType.CAFFEREF: ModelCalibration(
            compute_base_s=0.018,
            compute_per_sample_s=0.0140,
            comm_volume_gb=1.8,
            params_gb=0.248,
        ),
        # GoogLeNet: 7M params and Inception modules filter/cluster layer
        # outputs, so communication is small while compute dominates.
        ModelType.GOOGLENET: ModelCalibration(
            compute_base_s=0.060,
            compute_per_sample_s=0.0450,
            comm_volume_gb=0.35,
            params_gb=0.028,
        ),
    },
    # Victim-side sensitivity: fraction of run time exposed to bus
    # contention; tracks the communication fraction of Figure 3.
    sensitivity={
        BatchClass.TINY: 0.62,
        BatchClass.SMALL: 0.55,
        BatchClass.MEDIUM: 0.30,
        BatchClass.BIG: 0.05,
    },
    # Aggressor-side pressure: nearly flat, because the same gradient
    # bytes cross the bus per iteration at every batch size (Fig. 6:
    # "a job composed by a big batch can cause performance interference
    # since it still consumes bandwidth").
    pressure={
        BatchClass.TINY: 0.48,
        BatchClass.SMALL: 0.44,
        BatchClass.MEDIUM: 0.41,
        BatchClass.BIG: 0.385,
    },
)
