"""NVLink bandwidth usage model (paper Figure 5, Section 5.1).

The prototype samples ``nvidia-smi nvlink`` transmit counters once per
second and derives a bandwidth time series.  Here the same series is
produced from the performance model: during each 1-second window the
job moves ``comm_volume * iterations_in_window`` gigabytes over its
links, plus a small deterministic ripple that mimics the burstiness of
layer-wise gradient exchange visible in the paper's plot.

Small batches iterate often and saturate the links (~40 GB/s at batch
1 on the Minsky machine); big batches compute for most of each window
and barely reach a few GB/s.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.perf.calibration import Calibration, DEFAULT_CALIBRATION
from repro.perf.model import PerformanceModel
from repro.topology.graph import TopologyGraph
from repro.workload.job import Job


def average_demand_gbs(
    job: Job,
    perf: PerformanceModel,
    gpus: Sequence[str],
) -> float:
    """Average link bandwidth demand of a job on a given allocation."""
    if job.num_gpus == 1:
        return 0.0
    breakdown = perf.iteration_breakdown(job, gpus)
    volume = perf.calibration.model(job.model).comm_volume_gb
    return volume / breakdown.total_s


def peak_demand_gbs(job: Job, perf: PerformanceModel, gpus: Sequence[str]) -> float:
    """Burst bandwidth while gradients are in flight (link-limited)."""
    if job.num_gpus == 1:
        return 0.0
    return perf.worst_pair_bandwidth(list(gpus))


def nvlink_bandwidth_series(
    job: Job,
    perf: PerformanceModel,
    gpus: Sequence[str],
    duration_s: float = 250.0,
    sample_period_s: float = 1.0,
    ripple: float = 0.1,
) -> tuple[np.ndarray, np.ndarray]:
    """Figure-5-style (times, GB/s) series for a solo job.

    The series is zero after the job completes.  ``ripple`` adds the
    deterministic oscillation seen in the measured counters (phase
    depends on the batch size so different series do not overlap).
    """
    if duration_s <= 0 or sample_period_s <= 0:
        raise ValueError("duration and sample period must be positive")
    times = np.arange(0.0, duration_s, sample_period_s)
    gpus = list(gpus)
    avg = average_demand_gbs(job, perf, gpus)
    end = job.iterations * perf.iteration_time(job, gpus)
    cap = peak_demand_gbs(job, perf, gpus)
    series = np.zeros_like(times)
    if avg > 0.0:
        phase = (job.batch_size % 7) * 0.9
        wobble = 1.0 + ripple * np.sin(times / (3.0 + math.log1p(job.batch_size)) + phase)
        series = np.minimum(avg * wobble, cap * 1.1)
        series[times > end] = 0.0
    return times, series


def dram_bandwidth_series(
    job: Job,
    perf: PerformanceModel,
    gpus: Sequence[str],
    duration_s: float = 250.0,
    sample_period_s: float = 1.0,
    cal: Calibration = DEFAULT_CALIBRATION,
) -> tuple[np.ndarray, np.ndarray]:
    """Simulated Perfmon2 DRAM-bandwidth counter series.

    Host memory traffic is the input pipeline plus (when the allocation
    has no P2P) the staged gradient copies; proportional to the NVLink
    series with a placement-dependent factor.
    """
    times, nvlink = nvlink_bandwidth_series(
        job, perf, gpus, duration_s=duration_s, sample_period_s=sample_period_s
    )
    breakdown = perf.iteration_breakdown(job, list(gpus))
    staging = 0.15 if breakdown.p2p else 0.85
    input_pipeline = 2.0 * job.num_gpus  # GB/s of training-sample reads
    dram = nvlink * staging + np.where(nvlink > 0, input_pipeline, 0.0)
    return times, dram
