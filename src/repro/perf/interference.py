"""Co-location interference model (paper Section 3.3, Figure 6).

Jobs never share GPUs, but they share buses (NVLink uplinks, PCIe
switches, the inter-socket X-bus) and host memory bandwidth.  The
slowdown job *v* (victim) suffers from co-located job *a* (aggressor)
is modelled as

``slowdown(v, a) = sensitivity(v) * pressure(a) * sharing(v, a)``

* ``sensitivity`` is the victim's exposure to bus contention: its
  batch-class base value (calibrated to Figure 6) scaled by how much of
  its run time the model says it spends communicating relative to
  AlexNet at the same class -- so GoogLeNet, which barely communicates,
  barely suffers.
* ``pressure`` is the aggressor's perturbation of the bus; nearly flat
  across batch classes (the same gradient bytes cross the bus per
  iteration regardless of batch size), scaled by the aggressor's
  relative bus demand.
* ``sharing`` in [0, 1] is the fraction of the victim's bus footprint
  the aggressor also touches (0 = fully disjoint buses), from
  :meth:`repro.topology.allocation.AllocationState.link_sharing_factor`.

Execution under interference runs at rate ``1 / (1 + sum of slowdowns)``.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.perf.calibration import Calibration, DEFAULT_CALIBRATION
from repro.topology.allocation import AllocationState
from repro.topology.graph import TopologyGraph
from repro.workload.job import BatchClass, Job, ModelType

#: Reference bandwidth for relative comm-fraction/demand scaling: the
#: dual-NVLink pack path on the Minsky testbed (GB/s).
_REF_BW = 40.0

#: Link-sharing factor of the configuration Figure 6 was measured in
#: (two 2-GPU jobs interleaved across the Minsky sockets, sharing the
#: X-bus and both DRAM domains).  Sharing factors are normalised
#: against this reference so the calibrated slowdown table applies in
#: full at the measured configuration, proportionally below it.
SHARING_REF = 2.0 / 3.0


def _comm_fraction(cal: Calibration, model: ModelType, batch_class: BatchClass) -> float:
    mc = cal.model(model)
    comm = mc.comm_volume_gb / _REF_BW
    compute = mc.compute_time(batch_class.representative_batch)
    return comm / (comm + compute)


def _avg_demand(cal: Calibration, model: ModelType, batch_class: BatchClass) -> float:
    mc = cal.model(model)
    comm = mc.comm_volume_gb / _REF_BW
    compute = mc.compute_time(batch_class.representative_batch)
    return mc.comm_volume_gb / (comm + compute)


def _coefficients(
    cal: Calibration, model: ModelType, batch_class: BatchClass
) -> tuple[float, float]:
    """(sensitivity, pressure) for one (model, batch class), memoized.

    Both are pure in ``(cal, model, batch_class)`` and evaluated for
    every co-runner pair on every interference query, so the memo is
    attached to the (frozen, unhashable) :class:`Calibration` instance
    itself via ``object.__setattr__`` — the cached floats are the very
    values the direct computation produces.
    """
    cache = getattr(cal, "_coefficient_cache", None)
    if cache is None:
        cache = {}
        object.__setattr__(cal, "_coefficient_cache", cache)
    key = (model, batch_class)
    out = cache.get(key)
    if out is None:
        s_rel = _comm_fraction(cal, model, batch_class) / _comm_fraction(
            cal, ModelType.ALEXNET, batch_class
        )
        p_rel = _avg_demand(cal, model, batch_class) / _avg_demand(
            cal, ModelType.ALEXNET, batch_class
        )
        out = (
            min(1.0, cal.sensitivity[batch_class] * s_rel),
            min(1.0, cal.pressure[batch_class] * p_rel),
        )
        cache[key] = out
    return out


def sensitivity(
    cal: Calibration, model: ModelType, batch_class: BatchClass
) -> float:
    """Victim-side sensitivity in [0, 1]."""
    return _coefficients(cal, model, batch_class)[0]


def pressure(cal: Calibration, model: ModelType, batch_class: BatchClass) -> float:
    """Aggressor-side pressure in [0, 1]."""
    return _coefficients(cal, model, batch_class)[1]


def pairwise_slowdown(
    victim: Job,
    aggressor: Job,
    sharing: float = 1.0,
    cal: Calibration = DEFAULT_CALIBRATION,
) -> float:
    """Fractional slowdown the victim suffers from one aggressor.

    With full bus sharing this reproduces the Figure 6 anchors for two
    AlexNet jobs: tiny+tiny ~0.30, big aggressor vs tiny victim ~0.24,
    vs small victim ~0.21, big+big ~0.02.
    """
    if not 0.0 <= sharing <= 1.0:
        raise ValueError(f"sharing must be in [0, 1], got {sharing}")
    s = _coefficients(cal, victim.model, victim.batch_class)[0]
    p = _coefficients(cal, aggressor.model, aggressor.batch_class)[1]
    return s * p * min(1.0, sharing / SHARING_REF)


class InterferenceModel:
    """Topology-aware interference over a live allocation state."""

    def __init__(
        self,
        topo: TopologyGraph,
        cal: Calibration = DEFAULT_CALIBRATION,
    ) -> None:
        self.topo = topo
        self.cal = cal
        # machine set per GPU set: pure in the (immutable) topology
        self._machines_memo: dict[frozenset[str], tuple[str, ...]] = {}

    def slowdown_factor(
        self,
        victim: Job,
        victim_gpus: Iterable[str],
        co_runners: Mapping[str, tuple[Job, frozenset[str]]],
        alloc: AllocationState,
    ) -> float:
        """Multiplicative slowdown (>= 1) for the victim's execution.

        ``co_runners`` maps job id -> (job, gpus) for every *other*
        running job; jobs on unrelated machines contribute 0 because
        their link-sharing factor is 0.
        """
        victim_gpus = frozenset(victim_gpus)
        total = 0.0
        for other_id, (other, other_gpus) in self._nearby(
            victim_gpus, co_runners, alloc
        ):
            if other_id == victim.job_id:
                continue
            share = alloc.link_sharing_factor(victim_gpus, other_gpus)
            if share > 0.0:
                total += pairwise_slowdown(victim, other, share, self.cal)
        return 1.0 + total

    def _nearby(
        self,
        gpus: frozenset[str],
        co_runners: Mapping[str, tuple[Job, frozenset[str]]],
        alloc: AllocationState,
    ) -> list[tuple[str, tuple[Job, frozenset[str]]]]:
        """Co-runners holding GPUs on the machines ``gpus`` touches.

        Only those can share buses; on large clusters this keeps the
        interference evaluation O(jobs on the machine), not O(all jobs).
        """
        machines = self._machines_memo.get(gpus)
        if machines is None:
            if len(self._machines_memo) > 65536:
                self._machines_memo.clear()
            machines = tuple({self.topo.machine_of(g) for g in gpus})
            self._machines_memo[gpus] = machines
        relevant: set[str] = set()
        for m in machines:
            relevant |= alloc.jobs_on_machine(m)
        out = []
        for job_id in sorted(relevant):
            entry = co_runners.get(job_id)
            if entry is not None:
                out.append((job_id, entry))
        return out

    def eq4_interference(
        self,
        job: Job,
        gpus: Iterable[str],
        co_runners: Mapping[str, tuple[Job, frozenset[str]]],
        alloc: AllocationState,
    ) -> float:
        """The paper's Eq. 4 interference metric ``I``.

        Average slowdown over the candidate job *and* every running job
        it would perturb.  We express each term as
        ``collocated_time / solo_time`` (>= 1, so minimising is better;
        the paper prints the inverse ratio but optimises in the same
        direction -- see DESIGN.md).  ``I == 1`` means no interference.
        """
        gpus = frozenset(gpus)
        terms = [self.slowdown_factor(job, gpus, co_runners, alloc)]
        for other_id, (other, other_gpus) in self._nearby(gpus, co_runners, alloc):
            if other_id == job.job_id:
                continue
            share = alloc.link_sharing_factor(other_gpus, gpus)
            terms.append(1.0 + pairwise_slowdown(other, job, share, self.cal))
        return sum(terms) / len(terms)

    def collocation_pair_slowdown(
        self,
        job_a: Job,
        gpus_a: Sequence[str],
        job_b: Job,
        gpus_b: Sequence[str],
        alloc: AllocationState,
    ) -> tuple[float, float]:
        """Fractional slowdowns (a's, b's) for a co-located pair."""
        share_ab = alloc.link_sharing_factor(frozenset(gpus_a), frozenset(gpus_b))
        share_ba = alloc.link_sharing_factor(frozenset(gpus_b), frozenset(gpus_a))
        return (
            pairwise_slowdown(job_a, job_b, share_ab, self.cal),
            pairwise_slowdown(job_b, job_a, share_ba, self.cal),
        )
