"""Performance prediction for unknown workloads (paper Section 4.2).

"Performance prediction for unknown jobs using the models from known
applications can enlarge the range of the analysis.  The previous
workload executions can feed a prediction model, such as using decision
tree [14, 37] or statistical clustering [8, 22, 28].  Because of the
cloud's high variability, our model does not need to be optimal;
high-quality decisions will be accurate enough."

This module implements both cited approaches from scratch:

* :class:`RegressionTree` -- a small CART regressor (variance-reducing
  binary splits on numeric features);
* :class:`KNNRegressor` -- inverse-distance-weighted k-nearest
  neighbours over standardised features (the "statistical clustering"
  flavour);

and :class:`ProfilePredictor`, which trains one regressor per profile
quantity on the known (model, batch-class) profiles and synthesises a
:class:`~repro.workload.profiles.JobProfile` for *any* batch size --
including ones between the calibrated classes (e.g. batch 12).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.workload.job import BatchClass, Job, ModelType, batch_class_of
from repro.workload.jobgraph import comm_weight
from repro.workload.profiles import JobProfile, ProfileDatabase, default_database


# ---------------------------------------------------------------------------
# CART regression tree
# ---------------------------------------------------------------------------

@dataclass
class _Node:
    value: float
    feature: int | None = None
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


class RegressionTree:
    """Binary CART regressor minimising within-leaf variance.

    Deterministic: splits scan features in order and thresholds at
    midpoints between sorted unique values.
    """

    def __init__(self, max_depth: int = 4, min_samples_leaf: int = 1) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self._root: _Node | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RegressionTree":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or y.ndim != 1 or len(X) != len(y):
            raise ValueError("X must be (n, d) and y (n,) of equal length")
        if len(y) == 0:
            raise ValueError("cannot fit on empty data")
        self._root = self._build(X, y, depth=0)
        return self

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(value=float(np.mean(y)))
        if depth >= self.max_depth or len(y) < 2 * self.min_samples_leaf:
            return node
        if float(np.var(y)) < 1e-18:
            return node
        best = self._best_split(X, y)
        if best is None:
            return node
        feature, threshold, mask = best
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    def _best_split(
        self, X: np.ndarray, y: np.ndarray
    ) -> tuple[int, float, np.ndarray] | None:
        n, d = X.shape
        base = float(np.var(y)) * n
        best_gain = 1e-15
        best: tuple[int, float, np.ndarray] | None = None
        for j in range(d):
            values = np.unique(X[:, j])
            for lo, hi in zip(values, values[1:]):
                threshold = (lo + hi) / 2.0
                mask = X[:, j] <= threshold
                n_left = int(mask.sum())
                if n_left < self.min_samples_leaf or n - n_left < self.min_samples_leaf:
                    continue
                cost = float(np.var(y[mask])) * n_left + float(
                    np.var(y[~mask])
                ) * (n - n_left)
                gain = base - cost
                if gain > best_gain:
                    best_gain = gain
                    best = (j, threshold, mask)
        return best

    def predict_one(self, x: Sequence[float]) -> float:
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        node = self._root
        while not node.is_leaf:
            node = node.left if x[node.feature] <= node.threshold else node.right
        return node.value

    def predict(self, X: np.ndarray) -> np.ndarray:
        return np.array([self.predict_one(row) for row in np.asarray(X, dtype=float)])

    def depth(self) -> int:
        def _d(node: _Node | None) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(_d(node.left), _d(node.right))

        if self._root is None:
            raise RuntimeError("tree is not fitted")
        return _d(self._root)


# ---------------------------------------------------------------------------
# k-nearest neighbours
# ---------------------------------------------------------------------------

class KNNRegressor:
    """Inverse-distance-weighted k-NN over standardised features."""

    def __init__(self, k: int = 3) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNNRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or len(X) != len(y) or len(y) == 0:
            raise ValueError("X must be (n, d) and y (n,), non-empty")
        self._mean = X.mean(axis=0)
        self._std = X.std(axis=0)
        self._std[self._std == 0] = 1.0
        self._X = (X - self._mean) / self._std
        self._y = y
        return self

    def predict_one(self, x: Sequence[float]) -> float:
        if self._X is None:
            raise RuntimeError("regressor is not fitted")
        z = (np.asarray(x, dtype=float) - self._mean) / self._std
        dists = np.sqrt(((self._X - z) ** 2).sum(axis=1))
        order = np.argsort(dists, kind="stable")[: min(self.k, len(dists))]
        nearest = dists[order]
        if nearest[0] < 1e-12:
            return float(self._y[order[0]])
        weights = 1.0 / nearest
        return float(np.average(self._y[order], weights=weights))

    def predict(self, X: np.ndarray) -> np.ndarray:
        return np.array([self.predict_one(row) for row in np.asarray(X, dtype=float)])


# ---------------------------------------------------------------------------
# profile prediction
# ---------------------------------------------------------------------------

#: quantities the predictor learns per profile
_TARGETS = (
    "solo_iter_pack_s",
    "solo_iter_spread_s",
    "comm_fraction",
    "avg_demand_gbs",
    "sensitivity",
    "pressure",
)


def _features(model: ModelType, batch_size: int) -> list[float]:
    """Numeric features describing a workload.

    Model identity enters through its calibrated compute/communication
    constants so the regressors generalise across models instead of
    memorising labels.
    """
    from repro.perf.calibration import DEFAULT_CALIBRATION

    mc = DEFAULT_CALIBRATION.model(model)
    return [
        math.log2(batch_size),
        mc.comm_volume_gb,
        mc.compute_per_sample_s,
        mc.compute_base_s,
    ]


class ProfilePredictor:
    """Predicts :class:`JobProfile` quantities for unseen batch sizes.

    Trained on the profile database (12 known (model, class) points by
    default); ``backend`` selects the paper's decision-tree or
    clustering approach.
    """

    def __init__(
        self,
        database: ProfileDatabase | None = None,
        backend: str = "tree",
    ) -> None:
        database = database or default_database()
        if backend == "tree":
            make: Callable = lambda: RegressionTree(max_depth=4)
        elif backend == "knn":
            make = lambda: KNNRegressor(k=3)
        else:
            raise ValueError(f"unknown backend {backend!r} (tree|knn)")
        self.backend = backend
        rows = []
        targets: dict[str, list[float]] = {t: [] for t in _TARGETS}
        for profile in database:
            rows.append(
                _features(profile.model, profile.batch_class.representative_batch)
            )
            for t in _TARGETS:
                targets[t].append(getattr(profile, t))
        X = np.array(rows)
        self._models = {
            t: make().fit(X, np.array(v)) for t, v in targets.items()
        }

    def predict(self, model: ModelType, batch_size: int) -> JobProfile:
        """Synthesise a profile for any batch size >= 1."""
        if batch_size < 1:
            raise ValueError("batch size must be >= 1")
        x = _features(model, batch_size)
        values = {t: float(self._models[t].predict_one(x)) for t in _TARGETS}
        batch_class = batch_class_of(batch_size)
        return JobProfile(
            model=model,
            batch_class=batch_class,
            comm_weight=comm_weight(batch_class),
            solo_iter_pack_s=max(1e-6, values["solo_iter_pack_s"]),
            solo_iter_spread_s=max(
                values["solo_iter_pack_s"], values["solo_iter_spread_s"]
            ),
            comm_fraction=min(1.0, max(0.0, values["comm_fraction"])),
            avg_demand_gbs=max(0.0, values["avg_demand_gbs"]),
            sensitivity=min(1.0, max(0.0, values["sensitivity"])),
            pressure=min(1.0, max(0.0, values["pressure"])),
        )

    def predict_for_job(self, job: Job) -> JobProfile:
        return self.predict(job.model, job.batch_size)


class PredictiveProfileDatabase(ProfileDatabase):
    """A profile database that predicts per-batch-size profiles.

    The stock :class:`ProfileDatabase` quantises every job to its batch
    *class* representative (1/4/32/128); this variant serves the class
    profile when the batch size matches the representative and a
    predicted profile otherwise, giving the scheduler's bandwidth and
    interference estimates finer resolution for in-between batch sizes
    (paper Section 4.2: prediction "can enlarge the range of the
    analysis").
    """

    def __init__(
        self,
        base: ProfileDatabase | None = None,
        backend: str = "tree",
    ) -> None:
        base = base or default_database()
        super().__init__({(p.model, p.batch_class): p for p in base})
        self._predictor = ProfilePredictor(base, backend=backend)
        self._cache: dict[tuple[ModelType, int], JobProfile] = {}

    def for_job(self, job: Job) -> JobProfile:
        batch_class = batch_class_of(job.batch_size)
        if job.batch_size == batch_class.representative_batch:
            return self.get(job.model, batch_class)
        key = (job.model, job.batch_size)
        cached = self._cache.get(key)
        if cached is None:
            cached = self._predictor.predict(job.model, job.batch_size)
            self._cache[key] = cached
        return cached
