"""Artificial-load interference profiling (paper Section 4.2, approach 1).

"The first approach is injecting artificial load, using
micro-benchmarks, onto the shared resources and measuring the
interference, i.e. the impact on run-time of other collocated jobs."

:class:`ArtificialLoad` is that micro-benchmark: a pseudo-job that
occupies GPUs purely to stress the buses at a configurable intensity.
:func:`measure_interference_table` collocates a probe workload with
artificial loads across the machine and records the measured slowdown
per (probe batch class, load intensity) cell -- the empirical analogue
of the calibrated model, usable to (re)build scheduler profiles for a
new machine without any analytic assumptions.

The measurement loop runs the probe through the *simulator* rather
than evaluating formulas, so it exercises exactly the code path a real
profiling campaign would (placement, co-location, slowdown dynamics).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.perf.calibration import Calibration, DEFAULT_CALIBRATION
from repro.schedulers.base import Scheduler
from repro.topology.graph import TopologyGraph
from repro.workload.job import BatchClass, Job, ModelType


@dataclass(frozen=True)
class ArtificialLoad:
    """A bus-stressing micro-benchmark occupying ``num_gpus`` GPUs.

    ``intensity`` in [0, 1] scales how hard it drives the shared links;
    1.0 approximates a tiny-batch AlexNet's pressure.  Internally it is
    expressed as a job whose batch class matches the requested
    intensity, so the whole scheduling/interference machinery treats it
    like any other workload.
    """

    name: str
    intensity: float
    num_gpus: int = 2
    duration_s: float = 1000.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.intensity <= 1.0:
            raise ValueError("intensity must be in [0, 1]")
        if self.num_gpus < 1:
            raise ValueError("num_gpus must be >= 1")

    def as_job(self, arrival_time: float = 0.0) -> Job:
        """The pseudo-job realising this load."""
        # higher intensity -> smaller batch class (more bus traffic)
        if self.intensity >= 0.75:
            batch = BatchClass.TINY
        elif self.intensity >= 0.5:
            batch = BatchClass.SMALL
        elif self.intensity >= 0.25:
            batch = BatchClass.MEDIUM
        else:
            batch = BatchClass.BIG
        from repro.workload.profiles import default_database

        profile = default_database().get(ModelType.ALEXNET, batch)
        iterations = max(1, round(self.duration_s / profile.solo_iter_pack_s))
        return Job(
            job_id=f"load-{self.name}",
            model=ModelType.ALEXNET,
            batch_size=batch.representative_batch,
            num_gpus=self.num_gpus,
            arrival_time=arrival_time,
            iterations=iterations,
            tags=("artificial-load",),
        )


#: the standard load ladder used by the profiling campaign
DEFAULT_LOADS = (
    ArtificialLoad("idle", 0.0),
    ArtificialLoad("light", 0.3),
    ArtificialLoad("medium", 0.6),
    ArtificialLoad("heavy", 1.0),
)


class PinnedScheduler(Scheduler):
    """Places each job on an explicitly pinned GPU set.

    The profiling campaign controls placements exactly (the probe on
    the even GPUs, the load on the odd ones -- the Figure 6 interleave),
    so scheduling policy must not interfere with the measurement.
    """

    name = "PINNED"

    def __init__(self, pins: Mapping[str, tuple[str, ...]]) -> None:
        super().__init__()
        self._pins = dict(pins)

    def schedule(self, ctx) -> list:
        placed = []
        co = dict(ctx.co_runners)
        for job in list(self.queued_jobs()):
            gpus = self._pins.get(job.job_id)
            if gpus is None:
                raise KeyError(f"no pinned GPUs for {job.job_id!r}")
            if not all(ctx.alloc.is_free(g) for g in gpus):
                continue
            solution = ctx.engine.score_allocation(job, tuple(gpus), co)
            self._place(ctx, job, solution, co)
            self._remove(job.job_id)
            placed.append(solution)
        return placed


def _run_probe(
    topo_factory: Callable[[], TopologyGraph],
    probe: Job,
    load: ArtificialLoad | None,
    calibration: Calibration,
) -> float:
    """Measured probe run time, optionally under an artificial load.

    Uses the paper's interleaved collocation (the Figure 6 setup): the
    load is pinned to the odd GPUs, the probe to the even ones, so both
    share the machine's buses.
    """
    from repro.sim.engine import Simulator

    topo = topo_factory()
    gpus = topo.gpus()
    if len(gpus) < probe.num_gpus * 2:
        raise ValueError("profiling machine too small for the interleave")
    pins = {probe.job_id: tuple(gpus[0 : 2 * probe.num_gpus : 2])}
    jobs = [probe]
    if load is not None and load.intensity > 0.0:
        load_job = load.as_job(arrival_time=0.0)
        pins[load_job.job_id] = tuple(gpus[1 : 2 * load_job.num_gpus : 2])
        jobs = [load_job, probe]
    sim = Simulator(
        topo, PinnedScheduler(pins), jobs, calibration=calibration
    )
    result = sim.run()
    rec = result.record_of(probe.job_id)
    if rec.exec_time is None:
        raise RuntimeError(f"probe {probe.job_id} did not finish")
    return rec.exec_time


def measure_interference_table(
    topo_factory: Callable[[], TopologyGraph],
    probe_batches: Mapping[str, int] | None = None,
    loads: tuple[ArtificialLoad, ...] = DEFAULT_LOADS,
    iterations: int = 200,
    calibration: Calibration = DEFAULT_CALIBRATION,
) -> dict[tuple[str, str], float]:
    """Empirical slowdown table: (probe class, load name) -> slowdown.

    For every probe batch class, runs the probe solo and under each
    artificial load, and records ``collocated/solo - 1``.
    """
    probe_batches = probe_batches or {
        bc.name.lower(): bc.representative_batch for bc in BatchClass
    }
    table: dict[tuple[str, str], float] = {}
    for probe_name, batch in probe_batches.items():
        probe = Job(
            job_id=f"probe-{probe_name}",
            model=ModelType.ALEXNET,
            batch_size=batch,
            num_gpus=2,
            iterations=iterations,
        )
        solo = _run_probe(topo_factory, probe, None, calibration)
        for load in loads:
            collocated = _run_probe(topo_factory, probe, load, calibration)
            table[(probe_name, load.name)] = max(0.0, collocated / solo - 1.0)
    return table


def table_to_text(table: Mapping[tuple[str, str], float]) -> str:
    """Format the measured table like Figure 6."""
    probes = sorted({p for p, _ in table})
    loads = sorted({l for _, l in table})
    header = f"{'probe/load':<12}" + "".join(f"{l:>9}" for l in loads)
    lines = [header]
    for p in probes:
        lines.append(
            f"{p:<12}" + "".join(f"{table[(p, l)]:>9.3f}" for l in loads)
        )
    return "\n".join(lines)
