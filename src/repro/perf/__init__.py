"""Profile-calibrated performance, bandwidth and interference models.

These replace the paper's measured Caffe runs (Section 3) and nvprof /
nvidia-smi / Perfmon2 counters: every constant is calibrated so the
model regenerates the *shapes* of Figures 3-6 (see DESIGN.md for the
substitution rationale).  The scheduler itself only ever consumes
:class:`~repro.workload.profiles.JobProfile` objects built from these
models, mirroring how the paper's scheduler consumes experimentally
generated profiles (Section 4.2).
"""

from repro.perf.calibration import Calibration, ModelCalibration, DEFAULT_CALIBRATION, MachineKind
from repro.perf.model import PerformanceModel, Placement
from repro.perf.interference import InterferenceModel, pairwise_slowdown
from repro.perf.bandwidth import average_demand_gbs, nvlink_bandwidth_series

__all__ = [
    "Calibration",
    "DEFAULT_CALIBRATION",
    "InterferenceModel",
    "MachineKind",
    "ModelCalibration",
    "PerformanceModel",
    "Placement",
    "average_demand_gbs",
    "nvlink_bandwidth_series",
    "pairwise_slowdown",
]
