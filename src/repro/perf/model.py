"""Solo-execution performance model.

Given a topology, a job and a concrete GPU allocation this computes
per-iteration compute and communication time and total execution time
(absent interference; co-location effects live in
:mod:`repro.perf.interference`).

Communication is modelled as a synchronous all-reduce: its cost per
iteration is ``allreduce_scale(n) * comm_volume / bw_eff`` where
``bw_eff`` is the *worst* pair bandwidth among the allocated GPUs
(a synchronous collective advances at the pace of its slowest link),
with the no-P2P penalty applied to pairs whose traffic is staged
through host memory.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.perf.calibration import Calibration, DEFAULT_CALIBRATION, MachineKind
from repro.topology.graph import TopologyGraph
from repro.topology.links import LinkType
from repro.workload.job import Job


class Placement(enum.Enum):
    """Canonical placement strategies of Section 3."""

    PACK = "pack"
    SPREAD = "spread"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


def allreduce_scale(n_gpus: int) -> float:
    """Relative all-reduce cost vs the 2-GPU case: ``2(n-1)/n``, 0 for n=1."""
    if n_gpus < 1:
        raise ValueError("n_gpus must be >= 1")
    if n_gpus == 1:
        return 0.0
    return 2.0 * (n_gpus - 1) / n_gpus


def pack_gpus(
    topo: TopologyGraph, n: int, free: Iterable[str] | None = None
) -> list[str]:
    """Pick ``n`` free GPUs minimising mutual distance (pack strategy).

    Greedy: group candidates by socket, fill whole sockets of the same
    machine first (machines ordered by how completely they can host the
    job), then spill to the nearest sockets.
    """
    candidates = list(free) if free is not None else topo.gpus()
    if n < 1:
        raise ValueError("n must be >= 1")
    if len(candidates) < n:
        raise ValueError(f"need {n} GPUs, only {len(candidates)} available")
    by_machine: dict[str, list[str]] = {}
    for g in candidates:
        by_machine.setdefault(topo.machine_of(g), []).append(g)
    # prefer machines that can host the whole job, then larger pools
    machines = sorted(
        by_machine,
        key=lambda m: (len(by_machine[m]) < n, -len(by_machine[m]), m),
    )
    chosen: list[str] = []
    for m in machines:
        pool = sorted(by_machine[m], key=topo.gpu_index_of)
        by_socket: dict[str, list[str]] = {}
        for g in pool:
            by_socket.setdefault(topo.socket_of(g), []).append(g)
        # fullest sockets first to keep the job tight
        for s in sorted(by_socket, key=lambda s: (-len(by_socket[s]), s)):
            for g in by_socket[s]:
                chosen.append(g)
                if len(chosen) == n:
                    return chosen
    return chosen  # pragma: no cover - loop always returns once len==n


def spread_gpus(
    topo: TopologyGraph, n: int, free: Iterable[str] | None = None
) -> list[str]:
    """Pick ``n`` free GPUs round-robin across sockets (spread strategy)."""
    candidates = list(free) if free is not None else topo.gpus()
    if n < 1:
        raise ValueError("n must be >= 1")
    if len(candidates) < n:
        raise ValueError(f"need {n} GPUs, only {len(candidates)} available")
    by_socket: dict[str, list[str]] = {}
    for g in sorted(candidates, key=lambda g: (topo.machine_of(g), topo.gpu_index_of(g))):
        by_socket.setdefault(topo.socket_of(g), []).append(g)
    sockets = sorted(by_socket)
    chosen: list[str] = []
    i = 0
    while len(chosen) < n:
        progressed = False
        for s in sockets:
            if i < len(by_socket[s]):
                chosen.append(by_socket[s][i])
                progressed = True
                if len(chosen) == n:
                    return chosen
        if not progressed:  # pragma: no cover - guarded by the len check
            break
        i += 1
    return chosen


@dataclass(frozen=True)
class IterationBreakdown:
    """Per-iteration time split (drives the Figure 3 reproduction)."""

    compute_s: float
    comm_s: float
    p2p: bool

    @property
    def total_s(self) -> float:
        return self.compute_s + self.comm_s

    @property
    def comm_fraction(self) -> float:
        total = self.total_s
        return self.comm_s / total if total > 0 else 0.0


class PerformanceModel:
    """Solo execution-time model over a topology."""

    def __init__(
        self,
        topo: TopologyGraph,
        calibration: Calibration = DEFAULT_CALIBRATION,
        machine_kind: MachineKind | None = None,
    ) -> None:
        self.topo = topo
        self.calibration = calibration
        self._machine_kind_override = machine_kind
        self._kind_cache: dict[str, MachineKind] = {}

    # ------------------------------------------------------------------
    # machine classification
    # ------------------------------------------------------------------
    def machine_kind(self, machine: str) -> MachineKind:
        """NVLink or PCIe machine, inferred from GPU uplink technology."""
        if self._machine_kind_override is not None:
            return self._machine_kind_override
        cached = self._kind_cache.get(machine)
        if cached is not None:
            return cached
        kind = MachineKind.PCIE_K80
        for g in self.topo.gpus(machine=machine):
            for other in self.topo.neighbors(g):
                if self.topo.edge(g, other).spec.link_type is LinkType.NVLINK:
                    kind = MachineKind.NVLINK_P100
                    break
            if kind is MachineKind.NVLINK_P100:
                break
        self._kind_cache[machine] = kind
        return kind

    # ------------------------------------------------------------------
    # pairwise communication
    # ------------------------------------------------------------------
    def is_p2p(self, gpu_a: str, gpu_b: str) -> bool:
        """True when the pair can exchange peer-to-peer.

        Delegates to :meth:`TopologyGraph.p2p_connected`: P2P works
        along NVLink edges or across a shared PCIe switch; paths through
        a socket, machine or the network are staged via host memory.
        """
        return self.topo.p2p_connected(gpu_a, gpu_b)

    def pair_bandwidth(self, gpu_a: str, gpu_b: str) -> float:
        """Effective GB/s between two GPUs (bottleneck + no-P2P penalty)."""
        bw = self.topo.bottleneck_bandwidth(gpu_a, gpu_b)
        if not self.is_p2p(gpu_a, gpu_b):
            bw *= self.calibration.no_p2p_penalty
        return bw

    def worst_pair_bandwidth(self, gpus: Sequence[str]) -> float:
        pairs = itertools.combinations(sorted(gpus), 2)
        return min((self.pair_bandwidth(a, b) for a, b in pairs), default=float("inf"))

    # ------------------------------------------------------------------
    # iteration / execution time
    # ------------------------------------------------------------------
    def iteration_breakdown(self, job: Job, gpus: Sequence[str]) -> IterationBreakdown:
        """Per-iteration compute/communication split on an allocation.

        ``gpus`` is ordered by task index; for data-parallel jobs the
        order is irrelevant (synchronous all-reduce at the worst pair's
        pace), but model-parallel chains/rings are charged with the
        mapping-aware collective models so the task order DRB chose
        actually matters.
        """
        from repro.perf import collectives
        from repro.workload.job import CommPattern
        from repro.workload.jobgraph import MODEL_PARALLEL_WEIGHT_FACTOR

        gpus = list(gpus)
        if len(gpus) != job.num_gpus:
            raise ValueError(
                f"{job.job_id}: allocation has {len(gpus)} GPUs, job wants {job.num_gpus}"
            )
        machine = self.topo.machine_of(gpus[0])
        kind = self.machine_kind(machine)
        compute = self.calibration.compute_time(job.model, job.batch_size, kind)
        if len(gpus) == 1:
            return IterationBreakdown(compute_s=compute, comm_s=0.0, p2p=True)
        volume = self.calibration.model(job.model).comm_volume_gb
        penalty = self.calibration.no_p2p_penalty
        if job.comm_pattern is CommPattern.MODEL_PARALLEL_CHAIN:
            comm = collectives.chain_pipeline_time(
                self.topo, gpus, volume * MODEL_PARALLEL_WEIGHT_FACTOR, penalty
            )
        elif job.comm_pattern is CommPattern.MODEL_PARALLEL_RING:
            comm = collectives.ring_allreduce_time(
                self.topo, gpus, volume * MODEL_PARALLEL_WEIGHT_FACTOR, penalty
            )
        else:
            bw = self.worst_pair_bandwidth(gpus)
            comm = allreduce_scale(len(gpus)) * volume / bw
        p2p = all(self.is_p2p(a, b) for a, b in itertools.combinations(sorted(gpus), 2))
        return IterationBreakdown(compute_s=compute, comm_s=comm, p2p=p2p)

    def iteration_time(self, job: Job, gpus: Sequence[str]) -> float:
        return self.iteration_breakdown(job, gpus).total_s

    def solo_exec_time(self, job: Job, gpus: Sequence[str]) -> float:
        """Total solo run time of ``job`` on allocation ``gpus`` (seconds)."""
        return job.iterations * self.iteration_time(job, gpus)

    def ideal_exec_time(self, job: Job) -> float:
        """Best achievable run time on an *empty* topology (pack placement).

        Slowdown metrics (Figures 8e/9e/10/11) compare against this.
        """
        gpus = pack_gpus(self.topo, job.num_gpus)
        return self.solo_exec_time(job, gpus)

    def placement_gpus(self, job: Job, placement: Placement) -> list[str]:
        """Canonical pack/spread allocation for characterization runs."""
        picker = pack_gpus if placement is Placement.PACK else spread_gpus
        return picker(self.topo, job.num_gpus)
