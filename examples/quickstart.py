#!/usr/bin/env python
"""Quickstart: place one deep-learning job on a Power8 "Minsky" machine.

Builds the paper's testbed topology, asks the topology-aware placement
engine for a GPU allocation for a communication-heavy AlexNet job, and
prints the decision together with the exact command line the prototype
would use to enforce it.

Run:  python examples/quickstart.py
"""

from repro import (
    AllocationState,
    Job,
    ModelType,
    PerformanceModel,
    PlacementEngine,
    power8_minsky,
)
from repro.prototype.enforcement import launch_command
from repro.topology.discovery import render_topo_matrix


def main() -> None:
    # 1. The physical topology (normally discovered via nvidia-smi).
    topo = power8_minsky()
    print("Discovered topology (nvidia-smi topo --matrix):\n")
    print(render_topo_matrix(topo))

    # 2. A job: AlexNet, tiny batch (communication heavy), 2 GPUs,
    #    and an SLO of at least 0.5 normalised utility.
    job = Job(
        "train-alexnet",
        ModelType.ALEXNET,
        batch_size=1,
        num_gpus=2,
        min_utility=0.5,
    )
    print(f"Submitting: {job.describe()}")
    print(f"  requires P2P: {job.requires_p2p}\n")

    # 3. Ask the engine for the best placement.
    alloc = AllocationState(topo)
    engine = PlacementEngine(topo, alloc)
    solution = engine.propose(job)
    assert solution is not None
    print(f"Placement: {solution.gpus}")
    print(f"  utility      = {solution.utility:.3f}")
    print(f"  P2P capable  = {solution.p2p}")
    print(f"  comm cost    = {solution.metrics.comm_cost:.1f} (Eq. 3)")
    print(f"  interference = {solution.metrics.interference:.3f} (Eq. 4)")
    print(f"  SLO met      = {solution.satisfies(job)}\n")

    # 4. What would this run cost?  (Figure 4's pack-vs-spread story.)
    perf = PerformanceModel(topo)
    chosen = perf.solo_exec_time(job, list(solution.gpus))
    spread = perf.solo_exec_time(job, ["m0/gpu0", "m0/gpu2"])
    print(f"Predicted run time on this placement: {chosen:8.1f} s")
    print(f"Same job spread across sockets:       {spread:8.1f} s")
    print(f"Placement speedup: {spread / chosen:.2f}x (paper: up to ~1.30x)\n")

    # 5. Enforce the decision exactly like the prototype (Section 5.1).
    engine.enforce(solution)
    print("Enforcement command:")
    print(" ", launch_command(topo, job, solution.gpus))


if __name__ == "__main__":
    main()
