#!/usr/bin/env python
"""Regenerate every table/figure of the paper's evaluation in one go.

Prints the same series the paper plots (see EXPERIMENTS.md for the
paper-vs-measured comparison).  Scenario 2 runs at 1/10 scale unless
``REPRO_FULL_SCALE=1`` is set.

Run:  python examples/paper_figures.py
"""

from repro.analysis.figures import (
    fig3_breakdown,
    fig4_pack_vs_spread,
    fig5_nvlink_bandwidth,
    fig6_collocation,
    fig8_prototype,
    fig10_scenario1,
    fig11_scenario2,
    sec32_pcie_vs_nvlink,
    sec553_overhead,
)
from repro.analysis.tables import (
    format_breakdown_table,
    format_collocation_table,
    format_speedup_table,
    format_timeline,
)
from repro.sim.metrics import comparison_table


def section(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


def main() -> None:
    section("Figure 3: compute vs communication breakdown")
    print(format_breakdown_table(fig3_breakdown()))

    section("Figure 4: pack vs spread speedup")
    print(format_speedup_table(fig4_pack_vs_spread()))

    section("Figure 5: NVLink bandwidth (mean GB/s while active)")
    for batch, (times, gbs) in sorted(fig5_nvlink_bandwidth().items()):
        active = gbs[gbs > 0]
        mean = active.mean() if len(active) else 0.0
        print(f"  batch {batch:>3}: {mean:6.2f} GB/s")

    section("Figure 6: co-location slowdowns (2x AlexNet)")
    print(format_collocation_table(fig6_collocation()))

    section("Section 3.2: NVLink vs PCIe speedups")
    data = sec32_pcie_vs_nvlink()
    print(format_speedup_table(
        {"batch_sizes": data["batch_sizes"], "nvlink": data["nvlink"], "pcie": data["pcie"]}
    ))

    section("Figure 8: prototype scenario (Table 1 jobs)")
    results = fig8_prototype()
    print(comparison_table(list(results.values())))
    print()
    print(format_timeline(results["TOPO-AWARE-P"]))

    section("Figure 10: scenario 1 (100 jobs, 5 machines)")
    s1 = fig10_scenario1()
    print(comparison_table(list(s1["results"].values())))

    section("Figure 11: scenario 2 (large cluster)")
    s2 = fig11_scenario2()
    print(f"scale: {s2['n_jobs']} jobs on {s2['n_machines']} machines")
    print(comparison_table(list(s2["results"].values())))

    section("Section 5.5.3: scheduler decision overhead")
    for name, secs in sec553_overhead(s2).items():
        print(f"  {name:<14} {secs * 1e3:8.3f} ms/round")


if __name__ == "__main__":
    main()
