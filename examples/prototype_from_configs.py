#!/usr/bin/env python
"""The paper's artifact workflow: configs + manifest -> `python main.py`.

Recreates Appendix A.3 end to end: writes ``sys-config.ini`` and one
config per scheduling algorithm, dumps the Table 1 job manifest as
JSON, runs the prototype system over every algorithm, and prints each
run's placement timeline, cumulative execution time and the enforcement
command lines.

Run:  python examples/prototype_from_configs.py
"""

import tempfile
from pathlib import Path

from repro.analysis.scenarios import table1_jobs
from repro.analysis.tables import format_timeline
from repro.prototype.config import write_sample_configs
from repro.prototype.system import PrototypeSystem
from repro.sim.metrics import slo_violations
from repro.workload.manifest import dump_manifest


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        # 1. configuration files (Appendix A.3)
        paths = write_sample_configs(tmp)
        print("Configuration files:")
        for p in paths:
            print(f"  {p.name}")

        # 2. the Table 1 workload manifest
        manifest = tmp / "jobs.json"
        dump_manifest(table1_jobs(), manifest)
        print(f"  {manifest.name} ({len(table1_jobs())} jobs)\n")

        # 3. run every configured algorithm (the paper's `python main.py`)
        system = PrototypeSystem.from_config_dir(tmp, jobs=table1_jobs())
        runs = system.run()

    # 4. report, worst policy first
    runs.sort(key=lambda r: -r.result.makespan)
    for run in runs:
        result = run.result
        print(format_timeline(result))
        print(
            f"  cumulative execution time: {result.makespan:.1f} s, "
            f"SLO violations: {len(slo_violations(result.records))}"
        )
        print()

    base = runs[0].result.makespan
    best = runs[-1].result
    print(
        f"{best.scheduler_name} speedup over {runs[0].result.scheduler_name}: "
        f"{base / best.makespan:.2f}x (paper: ~1.30x)\n"
    )

    print("Enforcement commands of the winning run:")
    for job_id, cmd in sorted(runs[-1].commands.items()):
        print(f"  {job_id}: {cmd}")


if __name__ == "__main__":
    main()
