#!/usr/bin/env python
"""Cloud-scale scheduling comparison (the paper's Section 5.5 workflow).

Generates a synthetic cloud workload (Poisson arrivals, Binomial
batch-size and model mixes per Section 5.3), replays it through all
four scheduling policies on a 10-machine cluster and prints the
comparison table plus the per-policy slowdown tails.

Run:  python examples/cloud_scheduling_sim.py [n_jobs] [n_machines]
"""

import sys

from repro import GeneratorConfig, WorkloadGenerator, cluster, run_comparison
from repro.sim.metrics import comparison_table, sorted_slowdowns, slo_violations


def main(n_jobs: int = 200, n_machines: int = 10) -> None:
    cfg = GeneratorConfig(arrival_rate_per_min=4.5)
    jobs = WorkloadGenerator(cfg, seed=2017).generate(n_jobs)
    print(
        f"Generated {n_jobs} jobs "
        f"({sum(j.num_gpus for j in jobs)} GPU requests) for "
        f"{n_machines} Minsky machines ({n_machines * 4} GPUs)\n"
    )

    results = run_comparison(lambda: cluster(n_machines), jobs)

    print(comparison_table(list(results.values())))
    print()
    for name, result in results.items():
        tail = sorted_slowdowns(result.records, include_waiting=True)[:8]
        tail_text = " ".join(f"{v:.2f}" for v in tail)
        violations = slo_violations(result.records)
        print(f"{name:<14} worst slowdowns: {tail_text}   SLO violations: {len(violations)}")

    best = min(results.values(), key=lambda r: r.makespan)
    print(f"\nBest policy by makespan: {best.scheduler_name} ({best.makespan:.0f} s)")


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    main(*args)
