#!/usr/bin/env python
"""Beyond the paper: failures, unknown workloads, cluster-manager export.

Three capabilities a production deployment needs on top of the paper's
algorithm, all built on the same substrate:

1. **failure injection** -- a machine dies mid-run; its jobs are
   resubmitted and the schedule self-heals;
2. **profile prediction** (paper Section 4.2) -- an unseen batch size
   (12) gets a synthesised profile from the decision-tree predictor;
3. **Kubernetes / Mesos export** (paper future work) -- placement
   decisions leave as pod specs / TaskInfos with the scheduler's
   reasoning attached as annotations.

Run:  python examples/production_features.py
"""

import json

from repro import (
    AllocationState,
    Job,
    ModelType,
    PlacementEngine,
    cluster,
    make_scheduler,
)
from repro.export import to_mesos_task, to_pod_spec
from repro.perf.prediction import ProfilePredictor
from repro.sim.engine import MachineFailure, Simulator

from repro.workload import WorkloadGenerator, GeneratorConfig


def failure_demo() -> None:
    print("=" * 70)
    print("1. Machine failure mid-run")
    print("=" * 70)
    jobs = WorkloadGenerator(GeneratorConfig(arrival_rate_per_min=6.0), seed=3).generate(12)
    sim = Simulator(
        cluster(3),
        make_scheduler("TOPO-AWARE-P"),
        jobs,
        failures=[MachineFailure("m1", at_time=120.0, duration_s=600.0)],
    )
    result = sim.run()
    restarted = [r for r in result.records if r.restarts > 0]
    print(f"m1 failed at t=120s for 600s; {len(restarted)} job(s) restarted:")
    for rec in restarted:
        print(
            f"  {rec.job.job_id}: restarts={rec.restarts}, "
            f"re-placed on {sorted({g.split('/')[0] for g in rec.gpus})}, "
            f"finished at {rec.finished_at:.0f}s"
        )
    finished = sum(1 for r in result.records if r.finished_at is not None)
    print(f"all {finished}/{len(jobs)} jobs completed despite the outage\n")


def prediction_demo() -> None:
    print("=" * 70)
    print("2. Profile prediction for an unseen batch size (Section 4.2)")
    print("=" * 70)
    for backend in ("tree", "knn"):
        predictor = ProfilePredictor(backend=backend)
        profile = predictor.predict(ModelType.ALEXNET, 12)
        print(
            f"  [{backend:>4}] AlexNet batch 12: "
            f"iter={profile.solo_iter_pack_s * 1e3:.1f} ms, "
            f"comm={profile.comm_fraction * 100:.0f}%, "
            f"sensitivity={profile.sensitivity:.2f}, "
            f"pressure={profile.pressure:.2f}"
        )
    print()


def export_demo() -> None:
    print("=" * 70)
    print("3. Kubernetes / Mesos export (paper future work)")
    print("=" * 70)
    topo = cluster(2)
    engine = PlacementEngine(topo, AllocationState(topo))
    job = Job("bert-pretrain", ModelType.ALEXNET, 1, 2, min_utility=0.5)
    solution = engine.propose(job)
    pod = to_pod_spec(topo, job, solution)
    print("Pod spec:")
    print(json.dumps(pod, indent=2)[:800], "...\n")
    task = to_mesos_task(topo, job, solution)
    print("Mesos task command:")
    print(" ", task["command"]["value"])


if __name__ == "__main__":
    failure_demo()
    prediction_demo()
    export_demo()
