#!/usr/bin/env python
"""Telemetry tour: metrics, structured events, and decision tracing.

Runs the paper's Table 1 workload under TOPO-AWARE-P with the full
observability stack attached — a :class:`TelemetryObserver` feeding a
metrics registry and a JSONL event log, plus a span recorder capturing
the scheduler's internal decision path (DRB recursion, FM passes,
Eq. 1-5 utility evaluation) — then shows each artifact the way the CLI
flags (``--metrics-out``, ``--events-out``, ``--trace-out``) would
write it.

Run:  python examples/telemetry_tour.py
"""

from repro.analysis.scenarios import table1_jobs
from repro.obs import (
    EventLog,
    MetricsRegistry,
    recording,
    render_prometheus,
    summarize,
)
from repro.obs.telemetry import TelemetryObserver
from repro.schedulers import make_scheduler
from repro.sim.runner import run_with_observers
from repro.topology.builders import power8_minsky


def main() -> None:
    topo = power8_minsky()
    jobs = table1_jobs()

    # 1. Wire the tap: one observer feeds both metrics and events.
    registry = MetricsRegistry()
    event_log = EventLog()
    observer = TelemetryObserver(
        registry,
        event_log,
        scheduler="TOPO-AWARE-P",
        total_gpus=len(topo.gpus()),
    )
    observer.run_start(len(jobs))

    # 2. Run with span recording active — every scheduler decision
    #    leaves a tree of sched.propose/drb.map/fm.bipartition/
    #    utility.evaluate spans.
    with recording() as recorder:
        result = run_with_observers(
            topo,
            make_scheduler("TOPO-AWARE-P"),
            jobs,
            observers=(observer,),
        )
    observer.run_end(result)

    # 3. Metrics, in Prometheus exposition format.
    print("=== Prometheus metrics (excerpt) ===")
    lines = render_prometheus(registry).splitlines()
    interesting = (
        "repro_jobs_",
        "repro_queue_depth",
        "repro_decision_latency_seconds_count",
        "# HELP repro_decision_latency_seconds ",
    )
    for line in lines:
        if line.startswith(interesting):
            print(line)

    # 4. The structured event log (what --events-out writes as JSONL).
    print("\n=== Event log ===")
    print(f"{len(event_log)} events; lifecycle of job0:")
    for event in event_log.events:
        if event.get("job_id") == "job0":
            extra = {
                k: v
                for k, v in event.items()
                if k not in ("schema", "seq", "type", "t", "scheduler", "job_id")
            }
            print(f"  t={event['t']:>7.1f}  {event['type']:<9} {extra}")

    # 5. The decision trace, summarised per job.
    print("\n=== Decision trace for job0 ===")
    spans = [span.to_dict() for span in recorder.spans]
    print(summarize(spans, job_id="job0"))


if __name__ == "__main__":
    main()
