#!/usr/bin/env python
"""Bring your own machine: model a custom GPU box and schedule onto it.

Shows the extension points a downstream user needs:

* build an arbitrary topology (here: a DGX-1-style box plus a PCIe-only
  inference box behind one network);
* round-trip discovery through the nvidia-smi matrix format;
* place a model-parallel job whose communication graph is a chain, not
  the uniform data-parallel clique;
* compare against the canonical pack/spread strategies.

Run:  python examples/custom_topology.py
"""

from repro import AllocationState, Job, ModelType, PerformanceModel, PlacementEngine
from repro.core.drb import drb_map
from repro.core.utility import communication_cost
from repro.perf.model import Placement
from repro.topology.builders import cluster, dgx1, power8_pcie_k80
from repro.topology.discovery import render_topo_matrix, topology_from_matrix
from repro.topology.links import LinkSpec
from repro.workload.jobgraph import model_parallel_chain


def heterogeneous_cluster():
    """One DGX-1 training box + one PCIe inference box."""
    def builder(mid: str):
        return dgx1(mid) if mid == "m0" else power8_pcie_k80(mid)

    return cluster(2, builder, network_link=LinkSpec.network())


def main() -> None:
    topo = heterogeneous_cluster()
    print(f"Cluster: {topo}\n")

    # --- discovery round-trip ------------------------------------------
    matrix = render_topo_matrix(topo, machine="m0")
    rebuilt = topology_from_matrix(matrix, "m0")
    print("DGX-1 matrix round-trips:", render_topo_matrix(rebuilt) == matrix)

    # --- schedule a data-parallel quad ----------------------------------
    alloc = AllocationState(topo)
    engine = PlacementEngine(topo, alloc)
    quad = Job("dp-quad", ModelType.ALEXNET, 1, 4, min_utility=0.5)
    sol = engine.propose(quad)
    print(f"\n{quad.job_id}: {sol.gpus}")
    print(f"  all on machine: {sorted({topo.machine_of(g) for g in sol.gpus})}")
    print(f"  utility={sol.utility:.3f} p2p={sol.p2p}")
    engine.enforce(sol)

    # --- a model-parallel pipeline uses a chain graph -------------------
    pipeline = Job("mp-pipeline", ModelType.GOOGLENET, 4, 4, min_utility=0.3)
    chain = model_parallel_chain(4, weight=4.0)
    mapping = drb_map(topo, alloc, pipeline, chain, alloc.free_gpus(), {})
    gpus = [mapping[t] for t in sorted(mapping)]
    print(f"\n{pipeline.job_id} (chain communication): stage order {gpus}")
    print(f"  Eq.3 communication cost: {communication_cost(topo, gpus):.1f}")

    # --- pack vs spread on the PCIe box ----------------------------------
    pcie_box = power8_pcie_k80("p0")
    perf = PerformanceModel(pcie_box)
    job = Job("probe", ModelType.ALEXNET, 1, 2)
    pack_t = perf.solo_exec_time(job, perf.placement_gpus(job, Placement.PACK))
    spread_t = perf.solo_exec_time(job, perf.placement_gpus(job, Placement.SPREAD))
    print(
        f"\nPCIe/K80 box, AlexNet batch 1: pack {pack_t:.0f}s vs "
        f"spread {spread_t:.0f}s -> {spread_t / pack_t:.2f}x (paper: ~1.24x)"
    )


if __name__ == "__main__":
    main()
