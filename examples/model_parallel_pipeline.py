#!/usr/bin/env python
"""Model parallelism end to end (paper Section 2's "even more critical" case).

Declares jobs whose tasks form a layer pipeline instead of the
data-parallel clique, and shows:

* the scheduler consumes the chain communication graph through the
  same manifest -> DRB pipeline;
* the mapping-aware performance model charges the pipeline by its
  slowest inter-stage link, so stage order matters;
* topology-aware placement beats the greedy baseline by more for
  model-parallel jobs than for data-parallel ones.

Run:  python examples/model_parallel_pipeline.py
"""

from repro import ModelType, make_scheduler, power8_minsky
from repro.perf.model import PerformanceModel
from repro.sim.engine import Simulator
from repro.sim.metrics import qos_slowdown
from repro.workload.job import CommPattern, Job
from repro.workload.manifest import dumps_manifest, loads_manifest


def pipeline_job(job_id: str, arrival: float) -> Job:
    return Job(
        job_id,
        ModelType.ALEXNET,
        batch_size=1,
        num_gpus=2,
        min_utility=0.5,
        arrival_time=arrival,
        iterations=1000,
        comm_pattern=CommPattern.MODEL_PARALLEL_CHAIN,
    )


def main() -> None:
    # --- manifests carry the pattern -------------------------------------
    jobs = [pipeline_job("stage-pair-0", 0.5), pipeline_job("stage-pair-1", 3.0)]
    manifest = dumps_manifest(jobs)
    print("Manifest excerpt:")
    for line in manifest.splitlines():
        if "comm_pattern" in line or '"id"' in line:
            print(" ", line.strip())
    assert loads_manifest(manifest)[0].comm_pattern is CommPattern.MODEL_PARALLEL_CHAIN

    # --- stage order matters --------------------------------------------
    topo = power8_minsky()
    perf = PerformanceModel(topo)
    probe = pipeline_job("probe", 0.0)
    packed = perf.iteration_time(probe, ["m0/gpu0", "m0/gpu1"])
    split = perf.iteration_time(probe, ["m0/gpu0", "m0/gpu2"])
    print(
        f"\nPipeline iteration time: NVLink stage pair {packed * 1e3:.1f} ms, "
        f"cross-socket pair {split * 1e3:.1f} ms "
        f"({split / packed:.2f}x slower)"
    )

    # data-parallel twin for comparison
    dp = Job("dp", ModelType.ALEXNET, 1, 2, iterations=1000)
    dp_ratio = perf.iteration_time(dp, ["m0/gpu0", "m0/gpu2"]) / perf.iteration_time(
        dp, ["m0/gpu0", "m0/gpu1"]
    )
    print(
        f"Data-parallel twin pays only {dp_ratio:.2f}x -- topology-awareness "
        "is indeed 'even more critical' for model parallelism"
    )

    # --- schedule a pipeline onto a partially used machine ----------------
    print("\nScheduling a pipeline next to a 1-GPU squatter:")
    workload = [
        Job("squatter", ModelType.GOOGLENET, 32, 1, arrival_time=0.0,
            iterations=400),
        pipeline_job("pipeline", 1.0),
    ]
    for policy in ("FCFS", "TOPO-AWARE-P"):
        result = Simulator(power8_minsky(), make_scheduler(policy), workload).run()
        rec = result.record_of("pipeline")
        print(
            f"  [{policy:<13}] pipeline: gpus={rec.gpus} "
            f"p2p={rec.p2p} qos-slowdown={qos_slowdown(rec):.2f}"
        )


if __name__ == "__main__":
    main()
